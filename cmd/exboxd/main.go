// Command exboxd runs ExBox as a live UDP middlebox on localhost: a
// gateway socket accepts client datagrams, tracks flows in a flow
// table, classifies each flow from its first packets, and applies
// admission control with an Admittance Classifier pre-trained against
// a simulated cell. Admitted traffic is forwarded to an upstream sink;
// rejected flows are dropped at the gateway, exactly as Section 4.2
// describes.
//
// Usage:
//
//	exboxd [-listen 127.0.0.1:0] [-duration 10s] [-demo]
//
// With -demo (the default), built-in traffic generators emulate a mix
// of web, streaming and conferencing clients so the daemon is fully
// self-contained; without it, point any UDP sources at the printed
// gateway address.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"sync"
	"time"

	"exbox/internal/classifier"
	"exbox/internal/exboxcore"
	"exbox/internal/excr"
	"exbox/internal/flowclass"
	"exbox/internal/flows"
	"exbox/internal/mathx"
	"exbox/internal/netsim"
	"exbox/internal/traffic"

	"exbox/internal/apps"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:0", "gateway UDP listen address")
	duration := flag.Duration("duration", 10*time.Second, "how long to run")
	demo := flag.Bool("demo", true, "spawn built-in demo traffic generators")
	flag.Parse()

	log.SetFlags(log.Ltime | log.Lmicroseconds)

	gw, err := newGateway(*listen)
	if err != nil {
		log.Fatalf("exboxd: %v", err)
	}
	defer gw.close()
	log.Printf("gateway listening on %s, sink on %s", gw.conn.LocalAddr(), gw.sink.LocalAddr())

	done := make(chan struct{})
	go gw.run(done)

	if *demo {
		var wg sync.WaitGroup
		rng := mathx.NewRand(time.Now().UnixNano())
		for i, class := range []excr.AppClass{
			excr.Web, excr.Streaming, excr.Conferencing,
			excr.Streaming, excr.Web, excr.Conferencing,
		} {
			wg.Add(1)
			go func(i int, class excr.AppClass, seed int64) {
				defer wg.Done()
				if err := sendTrace(gw.conn.LocalAddr().String(), class, *duration, seed); err != nil {
					log.Printf("generator %d (%v): %v", i, class, err)
				}
			}(i, class, rng.Int63())
		}
		wg.Wait()
	} else {
		time.Sleep(*duration)
	}
	close(done)
	gw.report()
}

// gateway is the UDP middlebox: one ingress socket, one upstream sink,
// a flow table, a traffic classifier and the ExBox middlebox core.
type gateway struct {
	conn *net.UDPConn
	sink *net.UDPConn

	mu        sync.Mutex
	table     *flows.Table
	fc        *flowclass.Classifier
	mb        *exboxcore.Middlebox
	start     time.Time
	forwarded int
	dropped   int
	admitted  int
	rejected  int
}

const cellID = exboxcore.CellID("ap0")

func newGateway(listen string) (*gateway, error) {
	addr, err := net.ResolveUDPAddr("udp", listen)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, err
	}
	sink, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		conn.Close()
		return nil, err
	}

	// Train the flow classifier on synthetic per-class traces and the
	// admittance classifier against the simulated cell's ground truth
	// (the operator's bootstrap, done offline here for a snappy demo).
	rng := mathx.NewRand(7)
	fc, err := flowclass.Train(
		[]excr.AppClass{excr.Web, excr.Streaming, excr.Conferencing}, 40, 10, rng)
	if err != nil {
		conn.Close()
		sink.Close()
		return nil, fmt.Errorf("training flow classifier: %w", err)
	}
	mb := exboxcore.New(excr.DefaultSpace, exboxcore.Discontinue)
	if _, err := mb.AddCell(cellID, classifier.DefaultConfig()); err != nil {
		conn.Close()
		sink.Close()
		return nil, err
	}
	oracle := apps.Oracle{Net: netsim.FluidWiFi{Config: netsim.TestbedWiFi()}}
	for _, e := range traffic.Arrivals(traffic.Random(rng, 30, 10, 10, excr.DefaultSpace), nil) {
		if err := mb.Observe(cellID, excr.Sample{Arrival: e.Arrival, Label: oracle.Label(e.Arrival)}); err != nil {
			conn.Close()
			sink.Close()
			return nil, err
		}
	}

	return &gateway{
		conn:  conn,
		sink:  sink,
		table: flows.NewTable(10, 30),
		fc:    fc,
		mb:    mb,
		start: time.Now(),
	}, nil
}

func (g *gateway) close() {
	g.conn.Close()
	g.sink.Close()
}

// run is the forwarding loop: account each datagram to its flow,
// classify once enough head packets arrived, decide admission, forward
// or drop.
func (g *gateway) run(done chan struct{}) {
	buf := make([]byte, 64*1024)
	sinkAddr := g.sink.LocalAddr().(*net.UDPAddr)
	for {
		select {
		case <-done:
			return
		default:
		}
		g.conn.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
		n, src, err := g.conn.ReadFromUDP(buf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			return
		}
		up := n > 0 && buf[0] == 'U'
		if g.handle(src, n, up) {
			if _, err := g.conn.WriteToUDP(buf[:n], sinkAddr); err != nil {
				log.Printf("forward: %v", err)
			}
		}
	}
}

// handle updates flow state and returns whether to forward the packet.
// The first payload byte carries the direction marker the demo
// generators set ('U' uplink, 'D' downlink), standing in for the
// ingress interface a real gateway would key on.
func (g *gateway) handle(src *net.UDPAddr, bytes int, up bool) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	key := flows.Key{
		Src: src.IP.String(), Dst: "sink",
		SrcPort: uint16(src.Port), DstPort: 9, Proto: flows.UDP,
	}
	now := time.Since(g.start).Seconds()
	f := g.table.Observe(key, flows.PacketMeta{Time: now, Bytes: bytes, Up: up})
	f.SNR = excr.SNRHigh

	if !f.Classified && f.ReadyToClassify(g.table.HeadCap) {
		class, conf, err := g.fc.ClassifyFlow(f)
		if err == nil {
			f.Class, f.Classified = class, true
			current := g.table.Matrix(excr.DefaultSpace)
			out, err := g.mb.Admit(cellID, excr.Arrival{Matrix: current, Class: class})
			if err == nil {
				f.Decided = true
				f.Admitted = out.Verdict == exboxcore.Admit
				if f.Admitted {
					g.admitted++
				} else {
					g.rejected++
				}
				log.Printf("flow %s classified %v (p=%.2f) with matrix %v -> %v (margin %.2f)",
					f.Key, class, conf, current, out.Verdict, out.Decision.Margin)
			}
		}
	}
	// Pre-decision packets pass (classification needs them); after the
	// decision, rejected flows are dropped at the gateway.
	if f.Decided && !f.Admitted {
		g.dropped++
		return false
	}
	g.forwarded++
	return true
}

func (g *gateway) report() {
	g.mu.Lock()
	defer g.mu.Unlock()
	fmt.Printf("\n=== exboxd summary ===\n")
	fmt.Printf("flows admitted: %d, rejected: %d\n", g.admitted, g.rejected)
	fmt.Printf("packets forwarded: %d, dropped: %d\n", g.forwarded, g.dropped)
	for _, f := range g.table.Active() {
		verdict := "undecided"
		if f.Decided {
			verdict = "rejected"
			if f.Admitted {
				verdict = "admitted"
			}
		}
		fmt.Printf("  %-32s class=%-12v pkts=%-6d bytes=%-8d %s\n",
			f.Key, f.Class, f.Packets, f.Bytes, verdict)
	}
}

// sendTrace plays a synthetic class trace against the gateway from its
// own UDP socket (one socket = one flow).
func sendTrace(gwAddr string, class excr.AppClass, d time.Duration, seed int64) error {
	raddr, err := net.ResolveUDPAddr("udp", gwAddr)
	if err != nil {
		return err
	}
	conn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		return err
	}
	defer conn.Close()

	tr := traffic.Synthesize(class, d.Seconds(), mathx.NewRand(seed))
	start := time.Now()
	payload := make([]byte, 64*1024)
	for _, p := range tr.Packets {
		if p.Bytes <= 0 {
			continue
		}
		at := time.Duration(p.TimeSec * float64(time.Second))
		if sleep := at - time.Since(start); sleep > 0 {
			time.Sleep(sleep)
		}
		// First byte marks the direction so the gateway can fold both
		// directions of the flow, as it would from interface context.
		if p.Up {
			payload[0] = 'U'
		} else {
			payload[0] = 'D'
		}
		size := p.Bytes
		if size > len(payload) {
			size = len(payload)
		}
		if _, err := conn.Write(payload[:size]); err != nil {
			return err
		}
		if time.Since(start) > d {
			break
		}
	}
	_ = os.Stdout.Sync()
	return nil
}
