// Command exboxd runs ExBox as a live UDP middlebox on localhost: a
// gateway socket accepts client datagrams, tracks flows in a sharded
// flow table, classifies each flow from its first packets, and applies
// admission control with an Admittance Classifier pre-trained against
// a simulated cell. Admitted traffic is forwarded to an upstream sink;
// rejected flows are dropped at the gateway, exactly as Section 4.2
// describes.
//
// The datapath is concurrent end to end: N packet workers share the
// ingress socket, flow state is partitioned across independently
// locked shards keyed on the 5-tuple hash, the traffic matrix that
// conditions each admission decision is read lock-free from atomic
// counters, and SVM retraining runs on a background worker per cell.
// A periodic sweep goroutine expires idle flows, late-classifies
// short flows whose head never filled (the silence case), and
// re-evaluates admitted flows against the current matrix (Section 4.3
// dynamics).
//
// Usage:
//
//	exboxd [-listen 127.0.0.1:0] [-duration 10s] [-demo]
//	       [-workers N] [-shards N] [-mixedsnr] [-http addr]
//	       [-rff] [-rffdim D] [-rffagreement F] [-snapshotdir DIR]
//
// With -demo (the default), built-in traffic generators emulate a mix
// of web, streaming and conferencing clients so the daemon is fully
// self-contained; without it, point any UDP sources at the printed
// gateway address. With -mixedsnr the daemon runs on the paper's
// 3-class x 2-SNR-level space, binning each client's (simulated)
// link quality into the matrix.
//
// With -rff each admission is scored through the random-Fourier-
// feature linearization of the RBF boundary (sub-microsecond instead
// of a walk over the support-vector slab); the model-health monitor
// compares the tier against exact scoring on every labeled sample and
// demotes back to the exact path when agreement drops below
// -rffagreement.
//
// With -snapshotdir the daemon persists each cell's learned model to
// DIR (atomically, one file per cell: after every background refit,
// on the periodic sweep, and on shutdown) and warm-boots from those
// files on the next start — restored cells serve admissions from the
// saved boundary immediately, with no cold refit. Corrupt or
// version-skewed files are rejected (counted in
// clf_snapshot_rejects_total and flagged on /debug/health) and the
// cell cold-starts.
//
// With -http (e.g. -http :9090) the daemon serves its telemetry over
// HTTP: a plaintext /metrics page, the decision audit trail as
// /debug/admissions, expvar under /debug/vars, and net/http/pprof
// under /debug/pprof/. All counters, gauges and histograms come from
// one obs.Registry shared by the gateway, the middlebox core, the
// classifier and the flow table. The same server publishes each
// cell's encoded snapshot at /snapshot/{cell} with the fit sequence
// as ETag, so a cluster worker can poll cheaply with If-None-Match.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"hash/fnv"
	"log"
	"net"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"exbox/internal/classifier"
	"exbox/internal/exboxcore"
	"exbox/internal/excr"
	"exbox/internal/flowclass"
	"exbox/internal/flows"
	"exbox/internal/mathx"
	"exbox/internal/netsim"
	"exbox/internal/obs"
	"exbox/internal/obs/trace"
	"exbox/internal/traffic"

	"exbox/internal/apps"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:0", "gateway UDP listen address")
	duration := flag.Duration("duration", 10*time.Second, "how long to run")
	demo := flag.Bool("demo", true, "spawn built-in demo traffic generators")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "packet-handling workers")
	shards := flag.Int("shards", 32, "flow-table shards")
	mixed := flag.Bool("mixedsnr", false, "use the 3-class x 2-SNR-level space")
	httpAddr := flag.String("http", "", "serve /metrics, /debug/vars and /debug/pprof on this address")
	warmstart := flag.Bool("warmstart", true, "seed each SVM refit from the previous fit's solver state")
	traceSample := flag.Int("tracesample", 16, "head-sample 1 in N flows for lifecycle tracing (1 = every flow, 0 = off)")
	traceBuf := flag.Int("tracebuf", 256, "how many flow traces the /debug/traces ring keeps")
	rff := flag.Bool("rff", false, "score admissions through the random-Fourier-feature tier (oracle-gated fallback to exact)")
	rffDim := flag.Int("rffdim", 256, "RFF dictionary size (cos/sin features) when -rff is on")
	rffAgreement := flag.Float64("rffagreement", 0.9, "demote the RFF tier when its agreement EWMA with exact scoring drops below this")
	snapshotDir := flag.String("snapshotdir", "", "persist per-cell model snapshots to this directory and warm-boot from it on start")
	flag.Parse()

	log.SetFlags(log.Ltime | log.Lmicroseconds)

	if err := validateFlags(*workers, *shards, *traceSample, *traceBuf, *rffDim, *rffAgreement); err != nil {
		log.Fatalf("exboxd: %v", err)
	}

	space := excr.DefaultSpace
	if *mixed {
		space = excr.MixedSNRSpace
	}
	reg := obs.NewRegistry()
	var tracer *trace.Tracer
	if *traceSample > 0 {
		tracer = trace.New(*traceBuf, *traceSample)
	}
	gw, err := newGateway(*listen, space, *shards, gatewayOptions{
		warmStart:    *warmstart,
		rff:          *rff,
		rffDim:       *rffDim,
		rffAgreement: *rffAgreement,
		snapshotDir:  *snapshotDir,
	}, reg, tracer)
	if err != nil {
		log.Fatalf("exboxd: %v", err)
	}
	defer gw.close()
	log.Printf("gateway listening on %s, sink on %s (%d workers, %d shards, space %dx%d)",
		gw.conn.LocalAddr(), gw.sink.LocalAddr(), *workers, *shards, space.Classes, space.Levels)

	if *httpAddr != "" {
		ln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			log.Fatalf("exboxd: telemetry listener: %v", err)
		}
		reg.PublishExpvar("exbox")
		mux := reg.ServeMux()
		mux.HandleFunc("/snapshot/", gw.serveSnapshot)
		// ReadHeaderTimeout keeps a slow-header client from pinning a
		// connection forever; Serve's error no longer vanishes; Shutdown
		// (deferred, so it runs before gw.close) drains in-flight scrapes
		// instead of cutting them off with the listener.
		srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
		go func() {
			if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("telemetry server: %v", err)
			}
		}()
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			if err := srv.Shutdown(ctx); err != nil {
				log.Printf("telemetry shutdown: %v", err)
			}
		}()
		log.Printf("telemetry on http://%s/metrics (also /debug/admissions, /debug/traces, /debug/health, /debug/vars, /debug/pprof/, /snapshot/{cell})", ln.Addr())
	}

	done := make(chan struct{})
	var loops sync.WaitGroup
	for i := 0; i < *workers; i++ {
		loops.Add(1)
		go func() {
			defer loops.Done()
			gw.run(done)
		}()
	}
	loops.Add(1)
	go func() {
		defer loops.Done()
		gw.sweeper(done)
	}()

	if *demo {
		var wg sync.WaitGroup
		rng := mathx.NewRand(time.Now().UnixNano())
		for i, class := range []excr.AppClass{
			excr.Web, excr.Streaming, excr.Conferencing,
			excr.Streaming, excr.Web, excr.Conferencing,
		} {
			wg.Add(1)
			go func(i int, class excr.AppClass, seed int64) {
				defer wg.Done()
				if err := sendTrace(gw.conn.LocalAddr().String(), class, *duration, seed); err != nil {
					log.Printf("generator %d (%v): %v", i, class, err)
				}
			}(i, class, rng.Int63())
		}
		wg.Wait()
	} else {
		time.Sleep(*duration)
	}
	close(done)
	loops.Wait()
	gw.report()
}

// gateway is the UDP middlebox: one ingress socket shared by the
// packet workers, one upstream sink, a sharded flow table, a traffic
// classifier and the ExBox middlebox core. Statistics live in the
// shared obs registry — each is one atomic counter, so the workers
// never serialize on them, and the same numbers feed /metrics, the
// periodic stats line and the exit report.
type gateway struct {
	conn  *net.UDPConn
	sink  *net.UDPConn
	space excr.Space

	table *flows.ShardedTable
	fc    *flowclass.Classifier
	mb    *exboxcore.Middlebox
	// oracle stands in for the QoE estimator's ground-truth feedback
	// in this self-contained demo: expired flows are labeled against
	// the simulated cell and fed back for online learning.
	oracle apps.Oracle
	start  time.Time
	// startNanos anchors the relative packet clock (seconds since start)
	// to wall time, so backfilled arrival spans carry real timestamps.
	startNanos int64

	// tracer is the flow-lifecycle tracer behind /debug/traces, nil when
	// tracing is off. lastHealth/healthSeen drive the transition log and
	// the exbox_health_status gauge the sweeper maintains.
	tracer     *trace.Tracer
	healthG    *obs.Gauge
	lastHealth exboxcore.HealthStatus
	healthSeen bool

	// snapDir is where snapshots persist ("" = off): the sweeper saves
	// periodically, close saves on shutdown, and the middlebox's retrain
	// workers save after every refit.
	snapDir string

	reg       *obs.Registry
	forwarded *obs.Counter // packets passed upstream
	dropped   *obs.Counter // packets of rejected flows dropped at the gate
	admitted  *obs.Counter // flows admitted
	rejected  *obs.Counter // flows rejected
	evicted   *obs.Counter // admitted flows discontinued by re-evaluation
	lateClass *obs.Counter // flows classified by the silence sweep
	expired   *obs.Counter // idle flows expired from the table
	feedback  *obs.Counter // labeled samples fed back for online learning
	admitLat  *obs.Histogram
}

const cellID = exboxcore.CellID("ap0")

// gatewayOptions bundles the tunables newGateway threads into the
// classifier: warm-started refits and the budget-constrained RFF
// scoring tier with its demotion threshold.
type gatewayOptions struct {
	warmStart    bool
	rff          bool
	rffDim       int
	rffAgreement float64
	snapshotDir  string
}

// validateFlags rejects nonsensical flag combinations before any
// socket is opened or goroutine started, so a typo'd invocation dies
// with one clear line instead of a zero-traffic run (or a divide/alloc
// panic deep in a worker). Pure so the table test can sweep it.
func validateFlags(workers, shards, traceSample, traceBuf, rffDim int, rffAgreement float64) error {
	if workers < 1 {
		return fmt.Errorf("-workers must be >= 1, got %d", workers)
	}
	if shards < 1 {
		return fmt.Errorf("-shards must be >= 1, got %d", shards)
	}
	if traceSample < 0 {
		return fmt.Errorf("-tracesample must be >= 0 (0 disables tracing), got %d", traceSample)
	}
	if traceBuf < 0 {
		return fmt.Errorf("-tracebuf must be >= 0, got %d", traceBuf)
	}
	if traceSample > 0 && traceBuf < 1 {
		return fmt.Errorf("-tracebuf must be >= 1 when tracing is on, got %d", traceBuf)
	}
	if rffDim < 2 {
		return fmt.Errorf("-rffdim must be >= 2 (cos/sin pairs), got %d", rffDim)
	}
	if rffAgreement <= 0 || rffAgreement > 1 {
		return fmt.Errorf("-rffagreement must be in (0, 1], got %g", rffAgreement)
	}
	return nil
}

// classifySilence is how long a flow with an unfilled head must stay
// quiet before the sweep classifies it anyway (the silence case).
const classifySilence = 2.0 // seconds

func newGateway(listen string, space excr.Space, shards int, opts gatewayOptions, reg *obs.Registry, tracer *trace.Tracer) (*gateway, error) {
	addr, err := net.ResolveUDPAddr("udp", listen)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, err
	}
	sink, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		conn.Close()
		return nil, err
	}

	// Train the flow classifier on synthetic per-class traces and the
	// admittance classifier against the simulated cell's ground truth
	// (the operator's bootstrap, done offline here for a snappy demo).
	rng := mathx.NewRand(7)
	fc, err := flowclass.Train(
		[]excr.AppClass{excr.Web, excr.Streaming, excr.Conferencing}, 40, 10, rng)
	if err != nil {
		conn.Close()
		sink.Close()
		return nil, fmt.Errorf("training flow classifier: %w", err)
	}
	mb := exboxcore.New(space, exboxcore.Discontinue)
	cfg := classifier.DefaultConfig()
	// Live gateway: batch SVM fits happen on the cell's background
	// worker, never on a packet worker, and (unless -warmstart=false)
	// each refit is seeded from the previous boundary so the worker
	// keeps up with the paper's retrain-every-batch cadence.
	cfg.DeferRetrain = true
	cfg.WarmStart = opts.warmStart
	// The RFF tier trades the exact SV-slab walk for a sub-microsecond
	// linearized score on every admission; the health monitor's oracle
	// gate demotes back to exact scoring if the tier misbehaves.
	cfg.SVM.RFF = opts.rff
	cfg.SVM.RFFDim = opts.rffDim
	if _, err := mb.AddCell(cellID, cfg); err != nil {
		conn.Close()
		sink.Close()
		return nil, err
	}
	if opts.rff {
		// The custom demotion threshold must land before Instrument:
		// EnableHealth is first-call-wins and Instrument installs the
		// defaults.
		hc := classifier.DefaultHealthConfig()
		hc.RFFAgreementMin = opts.rffAgreement
		mb.Cell(cellID).Classifier.EnableHealth(hc)
	}
	// Instrument before the bootstrap training below so the fit
	// metrics and training-size gauge cover it too. The tracer and the
	// health verdict hang off the same registry: /debug/traces serves
	// the tracer's ring, /debug/health the middlebox's report.
	mb.Instrument(reg, 256)
	mb.InstrumentTracing(tracer)
	reg.SetTracer(tracer)
	reg.SetHealth(func() interface{} { return mb.Health() })
	oracle := apps.Oracle{Net: netsim.FluidWiFi{Config: netsim.TestbedWiFi()}}

	// Warm boot: restore the cell's learned boundary from the snapshot
	// directory when one is configured. A restored online cell serves
	// admissions from the saved fit immediately — the offline bootstrap
	// below is skipped entirely, so a warm boot performs zero cold
	// refits. A missing, corrupt or version-skewed file falls through to
	// the cold path (rejects are counted and flagged on /debug/health).
	warmBooted := false
	if opts.snapshotDir != "" {
		if err := os.MkdirAll(opts.snapshotDir, 0o755); err != nil {
			conn.Close()
			sink.Close()
			return nil, fmt.Errorf("snapshot dir: %w", err)
		}
		mb.EnableSnapshotPersistence(opts.snapshotDir)
		n, err := mb.LoadSnapshots(opts.snapshotDir)
		if err != nil {
			log.Printf("snapshot load: %v", err)
		}
		if n > 0 && !mb.Cell(cellID).Classifier.Bootstrapping() {
			warmBooted = true
			log.Printf("warm boot: restored %s from %s (model v%d)",
				cellID, opts.snapshotDir, mb.Cell(cellID).Classifier.ModelVersion())
		}
	}
	if !warmBooted {
		var assign func(excr.AppClass) excr.SNRLevel
		if space.Levels > 1 {
			assign = traffic.RandomLevels(rng, space)
		}
		for _, e := range traffic.Arrivals(traffic.Random(rng, 30, 10, 10, space), assign) {
			if err := mb.Observe(cellID, excr.Sample{Arrival: e.Arrival, Label: oracle.Label(e.Arrival)}); err != nil {
				conn.Close()
				sink.Close()
				return nil, err
			}
		}
		if mb.Cell(cellID).Classifier.Bootstrapping() {
			// Deferred retraining leaves graduation to the worker; the demo
			// wants admission control active from the first packet.
			if err := mb.Cell(cellID).Classifier.ForceOnline(); err != nil {
				conn.Close()
				sink.Close()
				return nil, err
			}
		}
	}

	// One registry wires every layer: the middlebox core (audit ring,
	// admission latency, per-cell classifier metrics), the flow table
	// (occupancy, expiries) and the gateway's own packet/flow counters.
	table := flows.NewShardedTable(shards, 10, 30, space)
	table.Instrument(reg, "exbox_flows")
	start := time.Now()
	return &gateway{
		conn:       conn,
		sink:       sink,
		space:      space,
		table:      table,
		fc:         fc,
		mb:         mb,
		oracle:     oracle,
		start:      start,
		startNanos: start.UnixNano(),
		tracer:     tracer,
		healthG:    reg.Gauge("exbox_health_status"),
		snapDir:    opts.snapshotDir,
		reg:        reg,
		forwarded:  reg.Counter("exbox_gw_forwarded_packets_total"),
		dropped:    reg.Counter("exbox_gw_dropped_packets_total"),
		admitted:   reg.Counter("exbox_gw_admitted_flows_total"),
		rejected:   reg.Counter("exbox_gw_rejected_flows_total"),
		evicted:    reg.Counter("exbox_gw_discontinued_flows_total"),
		lateClass:  reg.Counter("exbox_gw_late_classified_total"),
		// The flow table already counts expiries; the gateway reads the
		// same counter instead of keeping a shadow copy.
		expired:  reg.Counter("exbox_flows_expired_total"),
		feedback: reg.Counter("exbox_gw_feedback_samples_total"),
		admitLat: reg.Histogram("exbox_admit_seconds", nil),
	}, nil
}

func (g *gateway) close() {
	g.conn.Close()
	g.sink.Close()
	g.mb.Close()
	// Final save after the retrain workers stopped: whatever the last
	// fit and training window were, the next start warm-boots from them.
	if g.snapDir != "" {
		if n, err := g.mb.SaveSnapshots(g.snapDir); err != nil {
			log.Printf("snapshot save: %v", err)
		} else if n > 0 {
			log.Printf("saved %d cell snapshot(s) to %s", n, g.snapDir)
		}
	}
}

// saveSnapshots is the sweeper's periodic persistence pass; unchanged
// cells cost an export but no write.
func (g *gateway) saveSnapshots() {
	if g.snapDir == "" {
		return
	}
	if _, err := g.mb.SaveSnapshots(g.snapDir); err != nil {
		log.Printf("snapshot save: %v", err)
	}
}

// serveSnapshot publishes /snapshot/{cell}: the cell's latest encoded
// snapshot with the fit sequence as ETag, so a subscriber polls with
// If-None-Match and pays nothing while the model hasn't changed.
func (g *gateway) serveSnapshot(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/snapshot/")
	if id == "" || strings.Contains(id, "/") {
		http.NotFound(w, r)
		return
	}
	data, seq, err := g.mb.EncodeCellSnapshot(exboxcore.CellID(id))
	if err != nil {
		if errors.Is(err, exboxcore.ErrUnknownCell) {
			http.NotFound(w, r)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	etag := fmt.Sprintf("%q", fmt.Sprint(seq))
	w.Header().Set("ETag", etag)
	if r.Header.Get("If-None-Match") == etag {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(data)
}

// run is one packet worker's forwarding loop: account each datagram to
// its flow under the owning shard's lock, classify once enough head
// packets arrived, decide admission against the lock-free matrix,
// forward or drop. UDP reads are safe to share across workers.
func (g *gateway) run(done chan struct{}) {
	buf := make([]byte, 64*1024)
	// Per-worker classifier workspace: admission on this worker's flows
	// reuses it, so the steady-state decision path never allocates.
	scratch := new(classifier.Scratch)
	sinkAddr := g.sink.LocalAddr().(*net.UDPAddr)
	for {
		select {
		case <-done:
			return
		default:
		}
		g.conn.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
		n, src, err := g.conn.ReadFromUDP(buf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			return
		}
		up := n > 0 && buf[0] == 'U'
		if g.handle(src, n, up, scratch) {
			if _, err := g.conn.WriteToUDP(buf[:n], sinkAddr); err != nil {
				log.Printf("forward: %v", err)
			}
		}
	}
}

// handle updates flow state and returns whether to forward the packet.
// The first payload byte carries the direction marker the demo
// generators set ('U' uplink, 'D' downlink), standing in for the
// ingress interface a real gateway would key on.
func (g *gateway) handle(src *net.UDPAddr, bytes int, up bool, scratch *classifier.Scratch) bool {
	key := flows.Key{
		Src: src.IP.String(), Dst: "sink",
		SrcPort: uint16(src.Port), DstPort: 9, Proto: flows.UDP,
	}
	now := time.Since(g.start).Seconds()
	forward := true
	g.table.Do(key, func(t *flows.Table) {
		f := t.Observe(key, flows.PacketMeta{Time: now, Bytes: bytes, Up: up})
		if f.Packets == 1 {
			// The AP/eNodeB reports each client's link quality; the
			// demo derives a stable per-client SNR from its address.
			f.SNR = snrFor(src)
			// Head sampling: the tracing decision for the flow's whole
			// lifecycle is made here, once, from the key hash. Unsampled
			// flows leave f.Trace nil and never touch the tracer again.
			if id := traceID(f.Key); g.tracer.Sampled(id) {
				f.Trace = g.tracer.Start(id, string(cellID), -1, int(f.SNR), "sampled")
				f.Trace.Add(trace.Span{Kind: trace.KindArrival, UnixNanos: g.startNanos + int64(now*1e9)})
			}
		}
		if f.ReadyToClassify(t.HeadCap) {
			g.classifyAndDecide(f, scratch)
		}
		// Pre-decision packets pass (classification needs them); after
		// the decision, rejected flows are dropped at the gateway.
		forward = !(f.Decided && !f.Admitted)
	})
	if forward {
		g.forwarded.Inc()
	} else {
		g.dropped.Inc()
	}
	return forward
}

// classifyAndDecide runs traffic classification and admission control
// for one flow. Caller holds the flow's shard lock.
func (g *gateway) classifyAndDecide(f *flows.Flow, scratch *classifier.Scratch) {
	class, conf, err := g.fc.ClassifyFlow(f)
	if err != nil {
		return
	}
	f.Class, f.Classified = class, true
	if f.Trace != nil {
		f.Trace.SetClass(int(class))
		f.Trace.Add(trace.Span{
			Kind: trace.KindClassify, UnixNanos: time.Now().UnixNano(),
			Note: fmt.Sprintf("%v p=%.2f", class, conf),
		})
	}
	current := g.table.Matrix()
	out, err := g.mb.AdmitTraced(cellID, excr.Arrival{Matrix: current, Class: class, Level: g.level(f.SNR)}, scratch, f.Trace)
	if err != nil {
		return
	}
	f.Decided = true
	f.Admitted = out.Verdict == exboxcore.Admit
	if f.Admitted {
		g.admitted.Inc()
		g.table.TrackAdmitted(f)
	} else {
		g.rejected.Inc()
		// Rejections are always worth a trace: promote the flow past
		// head sampling, backfilling the arrival and decision spans so
		// the exported trace is still complete.
		if f.Trace == nil && g.tracer != nil {
			f.Trace = g.tracer.Promote(traceID(f.Key), string(cellID), int(class), int(g.level(f.SNR)),
				"rejected", g.startNanos+int64(f.FirstSeen*1e9))
			f.Trace.Add(exboxcore.DecisionSpan(time.Now().UnixNano(), 0, out))
		}
	}
	log.Printf("flow %s classified %v (p=%.2f) snr=%v with matrix %v -> %v (margin %.2f)",
		f.Key, class, conf, f.SNR, current, out.Verdict, out.Decision.Margin)
}

// level collapses a flow's SNR into the space the middlebox runs on,
// the same rule Reevaluate applies.
func (g *gateway) level(snr excr.SNRLevel) excr.SNRLevel {
	if g.space.Levels == 1 {
		return 0
	}
	return snr
}

// traceID hashes a flow key into a trace ID without allocating (the
// fmt-based Key.String would): a manual FNV-64a over the key's fields,
// run once per flow on its first packet.
func traceID(k flows.Key) trace.ID {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime
		}
	}
	mix(k.Src)
	mix(k.Dst)
	h ^= uint64(k.SrcPort)
	h *= prime
	h ^= uint64(k.DstPort)
	h *= prime
	h ^= uint64(k.Proto)
	h *= prime
	return trace.ID(h)
}

// snrFor bins a client into an SNR level deterministically from its
// IP address alone, standing in for the link quality a real AP would
// report. Link quality belongs to the radio, i.e. the host — hashing
// the source port too would hand every flow from one client its own
// SNR, which is not how a station's channel behaves.
func snrFor(src *net.UDPAddr) excr.SNRLevel {
	h := fnv.New32a()
	h.Write([]byte(src.IP.String()))
	if h.Sum32()%4 == 0 {
		return excr.SNRLow
	}
	return excr.SNRHigh
}

// sweeper is the periodic maintenance goroutine: late-classify silent
// short flows, expire idle flows (feeding their labels back for online
// learning), and re-evaluate admitted flows against the current
// matrix, discontinuing the ones whose classification turned negative.
func (g *gateway) sweeper(done chan struct{}) {
	tick := time.NewTicker(500 * time.Millisecond)
	defer tick.Stop()
	// The sweeper's own classifier workspace: late classification and
	// the batched re-evaluation sweep reuse it tick after tick.
	scratch := new(classifier.Scratch)
	n := 0
	for {
		select {
		case <-done:
			return
		case <-tick.C:
			g.sweep(time.Since(g.start).Seconds(), scratch)
			if n++; n%10 == 0 {
				g.logStats()
				g.checkHealth()
				g.saveSnapshots()
			}
		}
	}
}

// checkHealth recomputes the middlebox health verdict, mirrors it into
// the exbox_health_status gauge (0 green, 1 yellow, 2 red) and logs
// transitions — the operator sees the flip, not a heartbeat.
func (g *gateway) checkHealth() {
	rep := g.mb.Health()
	g.healthG.Set(int64(rep.Status))
	if g.healthSeen && rep.Status == g.lastHealth {
		return
	}
	var checks []string
	for _, c := range rep.Checks {
		if c.Status != exboxcore.Green {
			checks = append(checks, fmt.Sprintf("%s=%.3g", c.Name, c.Value))
		}
	}
	for _, cell := range rep.Cells {
		for _, c := range cell.Checks {
			if c.Status != exboxcore.Green {
				checks = append(checks, fmt.Sprintf("%s/%s=%.3g", cell.Cell, c.Name, c.Value))
			}
		}
	}
	if g.healthSeen {
		log.Printf("health: %v -> %v %v", g.lastHealth, rep.Status, checks)
	} else {
		log.Printf("health: %v", rep.Status)
	}
	g.lastHealth, g.healthSeen = rep.Status, true
}

// logStats emits the periodic one-line gateway summary from the same
// registry the /metrics page serves.
func (g *gateway) logStats() {
	log.Printf("stats: fwd=%d drop=%d admit=%d reject=%d discont=%d expired=%d late=%d feedback=%d tracked=%d admit_p50=%.3gs p99=%.3gs",
		g.forwarded.Value(), g.dropped.Value(), g.admitted.Value(),
		g.rejected.Value(), g.evicted.Value(), g.expired.Value(),
		g.lateClass.Value(), g.feedback.Value(), g.table.Len(),
		g.admitLat.Quantile(0.5), g.admitLat.Quantile(0.99))
}

func (g *gateway) sweep(now float64, scratch *classifier.Scratch) {
	// Silence case: classify short flows whose head never filled.
	g.table.Sweep(func(t *flows.Table) {
		for _, f := range t.Active() {
			if f.ReadyBySilence(now, classifySilence) {
				g.classifyAndDecide(f, scratch)
				if f.Classified {
					g.lateClass.Inc()
				}
			}
		}
	})

	// Expire idle flows (the table counts the expiries); their observed
	// tuples (labeled by the demo oracle, standing in for the QoE
	// estimator) drive online learning on the cell's background
	// retrainer. Rejected flows expire too — the gateway stops
	// refreshing their activity once the drop decision is made — so
	// negative outcomes feed the training set just like positives.
	current := g.table.Matrix()
	for _, f := range g.table.Expire(now) {
		if f.Classified {
			arr := excr.Arrival{Matrix: current, Class: f.Class, Level: g.level(f.SNR)}
			_ = g.mb.ObserveTraced(cellID, excr.Sample{Arrival: arr, Label: g.oracle.Label(arr)}, f.Trace)
			g.feedback.Inc()
		}
		if f.Trace != nil {
			f.Trace.Add(trace.Span{
				Kind: trace.KindExpiry, UnixNanos: time.Now().UnixNano(),
				Note: fmt.Sprintf("pkts=%d bytes=%d", f.Packets, f.Bytes),
			})
			f.Trace.Close()
		}
	}

	// Dynamics (Section 4.3): rebuild the admitted-flow list and its
	// matrix in one sweep so Reevaluate sees a self-consistent pair,
	// then discontinue flows whose re-classification turned negative.
	var active []exboxcore.ActiveFlow
	var keys []flows.Key
	matrix := excr.NewMatrix(g.space)
	g.table.Sweep(func(t *flows.Table) {
		for _, f := range t.Active() {
			if f.Classified && f.Decided && f.Admitted && int(f.Class) < g.space.Classes {
				lvl := g.level(f.SNR)
				active = append(active, exboxcore.ActiveFlow{ID: len(active), Class: f.Class, Level: lvl, Trace: f.Trace})
				keys = append(keys, f.Key)
				matrix = matrix.Inc(f.Class, lvl)
			}
		}
	})
	if len(active) == 0 {
		return
	}
	evict, err := g.mb.ReevaluateWith(cellID, matrix, active, scratch)
	if err != nil {
		log.Printf("reevaluate: %v", err)
		return
	}
	for _, ev := range evict {
		k := keys[ev.ID]
		g.table.Do(k, func(t *flows.Table) {
			if f := t.Get(k); f != nil && f.Decided && f.Admitted {
				g.table.UntrackAdmitted(f)
				f.Admitted = false
				g.evicted.Inc()
				// A re-evaluation flip is always worth a trace: promote
				// past head sampling so the eviction is on /debug/traces.
				if f.Trace == nil && g.tracer != nil {
					f.Trace = g.tracer.Promote(traceID(f.Key), string(cellID), int(f.Class), int(g.level(f.SNR)),
						"reevaluate-flip", g.startNanos+int64(f.FirstSeen*1e9))
					f.Trace.Add(trace.Span{Kind: trace.KindReevaluate, UnixNanos: time.Now().UnixNano(), Verdict: "evict"})
				}
				log.Printf("flow %s discontinued by re-evaluation", f.Key)
			}
		})
	}
}

func (g *gateway) report() {
	fmt.Printf("\n=== exboxd summary ===\n")
	fmt.Printf("flows admitted: %d, rejected: %d, discontinued: %d\n",
		g.admitted.Value(), g.rejected.Value(), g.evicted.Value())
	fmt.Printf("packets forwarded: %d, dropped: %d\n", g.forwarded.Value(), g.dropped.Value())
	fmt.Printf("flows expired: %d, late-classified: %d\n", g.expired.Value(), g.lateClass.Value())
	for _, f := range g.table.Active() {
		verdict := "undecided"
		if f.Decided {
			verdict = "rejected"
			if f.Admitted {
				verdict = "admitted"
			}
		}
		fmt.Printf("  %-32s class=%-12v snr=%-4v pkts=%-6d bytes=%-8d %s\n",
			f.Key, f.Class, f.SNR, f.Packets, f.Bytes, verdict)
	}
}

// sendTrace plays a synthetic class trace against the gateway from its
// own UDP socket (one socket = one flow).
func sendTrace(gwAddr string, class excr.AppClass, d time.Duration, seed int64) error {
	raddr, err := net.ResolveUDPAddr("udp", gwAddr)
	if err != nil {
		return err
	}
	conn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		return err
	}
	defer conn.Close()

	tr := traffic.Synthesize(class, d.Seconds(), mathx.NewRand(seed))
	start := time.Now()
	payload := make([]byte, 64*1024)
	for _, p := range tr.Packets {
		if p.Bytes <= 0 {
			continue
		}
		at := time.Duration(p.TimeSec * float64(time.Second))
		if sleep := at - time.Since(start); sleep > 0 {
			time.Sleep(sleep)
		}
		// First byte marks the direction so the gateway can fold both
		// directions of the flow, as it would from interface context.
		if p.Up {
			payload[0] = 'U'
		} else {
			payload[0] = 'D'
		}
		size := p.Bytes
		if size > len(payload) {
			size = len(payload)
		}
		if _, err := conn.Write(payload[:size]); err != nil {
			return err
		}
		if time.Since(start) > d {
			break
		}
	}
	_ = os.Stdout.Sync()
	return nil
}
