// Command exboxd runs ExBox as a live UDP middlebox on localhost: a
// gateway socket accepts client datagrams, tracks flows in a sharded
// flow table, classifies each flow from its first packets, and applies
// admission control with an Admittance Classifier pre-trained against
// a simulated cell. Admitted traffic is forwarded to an upstream sink;
// rejected flows are dropped at the gateway, exactly as Section 4.2
// describes.
//
// The datapath is burst-batched end to end: one read loop owns the
// ingress socket and publishes each datagram into the owning worker's
// bounded MPSC ring (hashed once on the 5-tuple; a full ring drops
// with a counter instead of back-pressuring the socket), workers
// drain up to -burst packets at a time and run each burst through
// grouped flow-table passes (one shard lock per touched shard) and
// one batched admission call. Flow state is partitioned across
// independently locked shards, the traffic matrix that conditions
// each admission decision is read lock-free from atomic counters,
// and SVM retraining runs on a background worker per cell.
// A periodic sweep goroutine expires idle flows, late-classifies
// short flows whose head never filled (the silence case), and
// re-evaluates admitted flows against the current matrix (Section 4.3
// dynamics).
//
// Usage:
//
//	exboxd [-listen 127.0.0.1:0] [-duration 10s] [-demo]
//	       [-workers N] [-shards N] [-burst N] [-ringsize N]
//	       [-mixedsnr] [-http addr]
//	       [-rff] [-rffdim D] [-rffagreement F] [-snapshotdir DIR]
//	       [-flightdir DIR] [-tsres 1s] [-tsretain 15m]
//	       [-slowindow 15m] [-sloobj 0.99] [-latsample N]
//
// With -demo (the default), built-in traffic generators emulate a mix
// of web, streaming and conferencing clients so the daemon is fully
// self-contained; without it, point any UDP sources at the printed
// gateway address. With -mixedsnr the daemon runs on the paper's
// 3-class x 2-SNR-level space, binning each client's (simulated)
// link quality into the matrix.
//
// With -rff each admission is scored through the random-Fourier-
// feature linearization of the RBF boundary (sub-microsecond instead
// of a walk over the support-vector slab); the model-health monitor
// compares the tier against exact scoring on every labeled sample and
// demotes back to the exact path when agreement drops below
// -rffagreement.
//
// With -snapshotdir the daemon persists each cell's learned model to
// DIR (atomically, one file per cell: after every background refit,
// on the periodic sweep, and on shutdown) and warm-boots from those
// files on the next start — restored cells serve admissions from the
// saved boundary immediately, with no cold refit. Corrupt or
// version-skewed files are rejected (counted in
// clf_snapshot_rejects_total and flagged on /debug/health) and the
// cell cold-starts.
//
// With -flightdir the daemon journals every admission verdict (with
// its margin and audit sequence number), health transition, retrain,
// snapshot event, ingest-ring drop burst and QoE SLO breach into
// crash-safe binary segment files in DIR. After any exit — including
// kill -9 — `exlog -dir DIR` reconstructs the post-mortem timeline
// from whatever was flushed. QoE SLO burn-rate accounting (objective
// -sloobj over the -slowindow sliding window, with a fast window at
// 1/15th of it) runs regardless and surfaces as the slo_burn check on
// /debug/health. -latsample tunes how many admissions pay for a
// latency-histogram observation.
//
// With -http (e.g. -http :9090) the daemon serves its telemetry over
// HTTP: a plaintext /metrics page, the decision audit trail as
// /debug/admissions, windowed metric history as /debug/timeline
// (JSON; ?metric=, ?cell=, ?since= filters) and /timeline.bin
// (compact binary), expvar under /debug/vars, and net/http/pprof
// under /debug/pprof/. All counters, gauges and histograms come from
// one obs.Registry shared by the gateway, the middlebox core, the
// classifier and the flow table. The same server publishes each
// cell's encoded snapshot at /snapshot/{cell} with the fit sequence
// as ETag, so a cluster worker can poll cheaply with If-None-Match.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"hash/fnv"
	"log"
	"net"
	"net/http"
	"os"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"exbox/internal/classifier"
	"exbox/internal/exboxcore"
	"exbox/internal/excr"
	"exbox/internal/flowclass"
	"exbox/internal/flows"
	"exbox/internal/mathx"
	"exbox/internal/netsim"
	"exbox/internal/obs"
	"exbox/internal/obs/flightrec"
	"exbox/internal/obs/trace"
	"exbox/internal/obs/tsdb"
	"exbox/internal/ring"
	"exbox/internal/traffic"

	"exbox/internal/apps"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:0", "gateway UDP listen address")
	duration := flag.Duration("duration", 10*time.Second, "how long to run")
	demo := flag.Bool("demo", true, "spawn built-in demo traffic generators")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "packet-handling workers")
	shards := flag.Int("shards", 32, "flow-table shards")
	burst := flag.Int("burst", 64, "max packets a worker drains and processes per burst")
	ringSize := flag.Int("ringsize", 1024, "per-worker ingest ring capacity (rounded up to a power of two)")
	mixed := flag.Bool("mixedsnr", false, "use the 3-class x 2-SNR-level space")
	httpAddr := flag.String("http", "", "serve /metrics, /debug/vars and /debug/pprof on this address")
	warmstart := flag.Bool("warmstart", true, "seed each SVM refit from the previous fit's solver state")
	traceSample := flag.Int("tracesample", 16, "head-sample 1 in N flows for lifecycle tracing (1 = every flow, 0 = off)")
	traceBuf := flag.Int("tracebuf", 256, "how many flow traces the /debug/traces ring keeps")
	rff := flag.Bool("rff", false, "score admissions through the random-Fourier-feature tier (oracle-gated fallback to exact)")
	rffDim := flag.Int("rffdim", 256, "RFF dictionary size (cos/sin features) when -rff is on")
	rffAgreement := flag.Float64("rffagreement", 0.9, "demote the RFF tier when its agreement EWMA with exact scoring drops below this")
	snapshotDir := flag.String("snapshotdir", "", "persist per-cell model snapshots to this directory and warm-boot from it on start")
	flightDir := flag.String("flightdir", "", "journal flight-recorder events (admissions, health, retrains, snapshots, SLO breaches) to segment files in this directory")
	tsRes := flag.Duration("tsres", time.Second, "timeline sample resolution behind /debug/timeline")
	tsRetain := flag.Duration("tsretain", 15*time.Minute, "timeline retention window")
	sloWindow := flag.Duration("slowindow", 15*time.Minute, "QoE SLO slow burn-rate window (the fast window is 1/15th of it)")
	sloObj := flag.Float64("sloobj", 0.99, "QoE SLO objective: target good fraction of QoE ticks")
	latSample := flag.Int("latsample", 16, "sample 1 in N admissions into the latency histogram (rounded up to a power of two)")
	flag.Parse()

	log.SetFlags(log.Ltime | log.Lmicroseconds)

	if err := validateFlags(*workers, *shards, *traceSample, *traceBuf, *rffDim, *burst, *ringSize, *latSample, *rffAgreement, *sloObj, *tsRes, *tsRetain, *sloWindow); err != nil {
		log.Fatalf("exboxd: %v", err)
	}

	space := excr.DefaultSpace
	if *mixed {
		space = excr.MixedSNRSpace
	}
	reg := obs.NewRegistry()
	revision, goVersion := buildIdentity()
	reg.Info("exbox_build_info", map[string]string{"revision": revision, "goversion": goVersion})
	log.Printf("exboxd build: revision %s, %s", revision, goVersion)
	var tracer *trace.Tracer
	if *traceSample > 0 {
		tracer = trace.New(*traceBuf, *traceSample)
	}

	// The flight recorder starts before the gateway and its stop is
	// deferred before gw.close — LIFO defers then guarantee the writer
	// outlives the shutdown snapshot sweep, so the final KindSnapshot
	// events reach the journal before the last fsync.
	var flight *flightrec.Recorder
	if *flightDir != "" {
		flight = flightrec.NewRecorder(0)
		frDone := make(chan struct{})
		frErr := make(chan error, 1)
		go func() { frErr <- flight.RunWriter(flightrec.WriterConfig{Dir: *flightDir}, frDone) }()
		defer func() {
			close(frDone)
			if err := <-frErr; err != nil {
				log.Printf("flight recorder: %v", err)
			}
		}()
		log.Printf("flight recorder journaling to %s", *flightDir)
	}

	gw, err := newGateway(*listen, space, *shards, gatewayOptions{
		warmStart:    *warmstart,
		rff:          *rff,
		rffDim:       *rffDim,
		rffAgreement: *rffAgreement,
		snapshotDir:  *snapshotDir,
		workers:      *workers,
		burst:        *burst,
		ringSize:     *ringSize,
		latSample:    *latSample,
		sloObjective: *sloObj,
		sloWindow:    *sloWindow,
		flight:       flight,
	}, reg, tracer)
	if err != nil {
		log.Fatalf("exboxd: %v", err)
	}
	defer gw.close()

	// The in-process timeline store: every registered metric sampled on
	// a fixed cadence into fixed-memory rings, served as JSON and as the
	// compact binary dump. It samples whether or not -http is set, so a
	// post-mortem /timeline.bin pull always has history behind it.
	timeline := tsdb.New(reg, tsdb.Config{Resolution: *tsRes, Retention: *tsRetain})
	log.Printf("gateway listening on %s, sink on %s (%d workers, %d shards, burst %d, ring %d, space %dx%d)",
		gw.conn.LocalAddr(), gw.sink.LocalAddr(), *workers, *shards, *burst, gw.rings[0].Cap(), space.Classes, space.Levels)

	if *httpAddr != "" {
		ln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			log.Fatalf("exboxd: telemetry listener: %v", err)
		}
		reg.PublishExpvar("exbox")
		mux := reg.ServeMux()
		mux.HandleFunc("/snapshot/", gw.serveSnapshot)
		mux.Handle("/debug/timeline", timeline.Handler())
		mux.Handle("/timeline.bin", timeline.BinaryHandler())
		// ReadHeaderTimeout keeps a slow-header client from pinning a
		// connection forever; Serve's error no longer vanishes; Shutdown
		// (deferred, so it runs before gw.close) drains in-flight scrapes
		// instead of cutting them off with the listener.
		srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
		go func() {
			if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("telemetry server: %v", err)
			}
		}()
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			if err := srv.Shutdown(ctx); err != nil {
				log.Printf("telemetry shutdown: %v", err)
			}
		}()
		log.Printf("telemetry on http://%s/metrics (also /debug/admissions, /debug/traces, /debug/health, /debug/timeline, /timeline.bin, /debug/vars, /debug/pprof/, /snapshot/{cell})", ln.Addr())
	}

	done := make(chan struct{})
	var loops sync.WaitGroup
	gw.spawn(done, &loops)
	loops.Add(1)
	go func() {
		defer loops.Done()
		gw.sweeper(done)
	}()
	loops.Add(1)
	go func() {
		defer loops.Done()
		timeline.Run(done)
	}()

	if *demo {
		var wg sync.WaitGroup
		rng := mathx.NewRand(time.Now().UnixNano())
		for i, class := range []excr.AppClass{
			excr.Web, excr.Streaming, excr.Conferencing,
			excr.Streaming, excr.Web, excr.Conferencing,
		} {
			wg.Add(1)
			go func(i int, class excr.AppClass, seed int64) {
				defer wg.Done()
				if err := sendTrace(gw.conn.LocalAddr().String(), class, *duration, seed); err != nil {
					log.Printf("generator %d (%v): %v", i, class, err)
				}
			}(i, class, rng.Int63())
		}
		wg.Wait()
	} else {
		time.Sleep(*duration)
	}
	close(done)
	loops.Wait()
	gw.report()
}

// gateway is the UDP middlebox: one ingress socket shared by the
// packet workers, one upstream sink, a sharded flow table, a traffic
// classifier and the ExBox middlebox core. Statistics live in the
// shared obs registry — each is one atomic counter, so the workers
// never serialize on them, and the same numbers feed /metrics, the
// periodic stats line and the exit report.
type gateway struct {
	conn  *net.UDPConn
	sink  *net.UDPConn
	space excr.Space

	// The burst-batched ingest datapath: the read loop hashes each
	// datagram to its flow's shard, picks the worker owning that shard
	// (shard mod workers — a flow's packets always drain on one worker,
	// preserving per-flow order) and publishes into that worker's
	// bounded MPSC ring; a full ring drops the packet with a counter
	// instead of back-pressuring the socket. Workers drain up to burst
	// entries at a time and run the whole burst through two grouped
	// passes over the flow table plus one batched admission call.
	rings []*ring.MPSC[pkt]
	wake  []chan struct{} // one buffered wake signal per worker
	burst int

	table *flows.ShardedTable
	fc    *flowclass.Classifier
	mb    *exboxcore.Middlebox
	// oracle stands in for the QoE estimator's ground-truth feedback
	// in this self-contained demo: expired flows are labeled against
	// the simulated cell and fed back for online learning.
	oracle apps.Oracle
	start  time.Time
	// startNanos anchors the relative packet clock (seconds since start)
	// to wall time, so backfilled arrival spans carry real timestamps.
	startNanos int64

	// tracer is the flow-lifecycle tracer behind /debug/traces, nil when
	// tracing is off. lastHealth/healthSeen drive the transition log and
	// the exbox_health_status gauge the sweeper maintains.
	tracer     *trace.Tracer
	healthG    *obs.Gauge
	lastHealth exboxcore.HealthStatus
	healthSeen bool

	// flight mirrors the middlebox's recorder for the gateway's own
	// events: health transitions and ingest-ring drop deltas (nil = off).
	// lastRingDrops is the drop total already journaled.
	flight        *flightrec.Recorder
	lastRingDrops int64

	// snapDir is where snapshots persist ("" = off): the sweeper saves
	// periodically, close saves on shutdown, and the middlebox's retrain
	// workers save after every refit.
	snapDir string

	reg       *obs.Registry
	forwarded *obs.Counter // packets passed upstream
	dropped   *obs.Counter // packets of rejected flows dropped at the gate
	admitted  *obs.Counter // flows admitted
	rejected  *obs.Counter // flows rejected
	evicted   *obs.Counter // admitted flows discontinued by re-evaluation
	lateClass *obs.Counter // flows classified by the silence sweep
	expired   *obs.Counter // idle flows expired from the table
	feedback  *obs.Counter // labeled samples fed back for online learning
	admitLat  *obs.Histogram
	ingest    *obs.IngestMetrics // ring depth/drops and burst-size telemetry

	// noForwardIO makes processBurst account forwards without the sink
	// write. Benchmarks of the in-memory datapath set it so a per-packet
	// UDP syscall doesn't drown what they measure.
	noForwardIO bool
}

// pkt is one ingest-ring entry: the packet's metadata plus a pointer
// to its client's interned ingest state. Keeping the entry down to two
// words plus the metadata matters — every packet is copied into a ring
// slot and back out on drain, and the interned entry already carries
// the derived values (key, shard, SNR) the worker would otherwise
// recompute.
type pkt struct {
	ce   *clientEntry
	meta flows.PacketMeta
}

// clientEntry is the per-client ingest state the read loop interns on
// a client's first packet: the flow key built from its address, the
// key's shard slot, and the SNR level the AP reports for the station.
// Before interning, every packet paid an IP-string allocation, a key
// construction and a shard hash in the read loop; now a packet from a
// known client costs one map probe on its compact address.
type clientEntry struct {
	key   flows.Key
	snr   excr.SNRLevel
	shard int32
}

// clientAddr is the comparable compact form of a client address that
// keys the read loop's intern map.
type clientAddr struct {
	ip   [16]byte
	port int
}

// maxInternedClients bounds the read loop's intern map. When the cap
// is hit the map is dropped and rebuilt from live traffic — an
// amortized reset, not an LRU, because the map is a pure cache: losing
// it costs each active client one re-intern, never correctness.
const maxInternedClients = 1 << 16

// interner is the read loop's client cache. The one-entry memo in
// front of the map serves per-flow packet trains — UDP sources emit
// runs of back-to-back datagrams, so most probes are for the client
// the previous packet came from — and the map serves the interleave
// across clients.
type interner struct {
	gw      *gateway
	clients map[clientAddr]*clientEntry
	lastCA  clientAddr
	lastCE  *clientEntry
}

func newInterner(gw *gateway) *interner {
	return &interner{gw: gw, clients: make(map[clientAddr]*clientEntry)}
}

// get returns the interned ingest state for src, creating it on the
// client's first packet.
func (in *interner) get(src *net.UDPAddr) *clientEntry {
	var ca clientAddr
	// To4 aliases the existing slice (no allocation) and folds the
	// 4-byte and IPv4-mapped 16-byte spellings of one address into the
	// same intern key.
	if ip4 := src.IP.To4(); ip4 != nil {
		copy(ca.ip[12:], ip4)
	} else {
		copy(ca.ip[:], src.IP)
	}
	ca.port = src.Port
	if in.lastCE != nil && ca == in.lastCA {
		return in.lastCE
	}
	ce := in.clients[ca]
	if ce == nil {
		key := flows.Key{
			Src: src.IP.String(), Dst: "sink",
			SrcPort: uint16(src.Port), DstPort: 9, Proto: flows.UDP,
		}
		// One hash at intern time: the shard slot both routes the
		// client's packets to their worker (shard mod workers keeps a
		// flow's packets in order on one worker) and is reused by the
		// drain path's grouped table pass.
		ce = &clientEntry{
			key:   key,
			snr:   snrFor(src),
			shard: int32(in.gw.table.ShardIndex(key)),
		}
		if len(in.clients) >= maxInternedClients {
			in.clients = make(map[clientAddr]*clientEntry)
		}
		in.clients[ca] = ce
	}
	in.lastCA, in.lastCE = ca, ce
	return ce
}

const cellID = exboxcore.CellID("ap0")

// gatewayOptions bundles the tunables newGateway threads into the
// classifier and the ingest datapath: warm-started refits, the
// budget-constrained RFF scoring tier with its demotion threshold,
// and the ring/burst geometry (zero values pick the defaults, so
// tests can leave them unset).
type gatewayOptions struct {
	warmStart    bool
	rff          bool
	rffDim       int
	rffAgreement float64
	snapshotDir  string
	workers      int // ring count; <= 0 defaults to 1
	burst        int // max packets per drained burst; <= 0 defaults to 64
	ringSize     int // per-worker ring capacity; <= 0 defaults to 1024
	latSample    int // sample 1 in N admit latencies; <= 0 keeps the default
	// QoE SLO burn-rate accounting: zero values pick the SLOConfig
	// defaults (99% objective over a 15-minute slow window).
	sloObjective float64
	sloWindow    time.Duration
	// flight, when non-nil, journals admissions, health transitions,
	// retrains, snapshots and SLO breaches to the crash-safe recorder.
	flight *flightrec.Recorder
	// syncRetrain runs SVM fits inline in Observe instead of on the
	// cell's background worker. Production keeps the worker (fits must
	// never stall a packet); determinism tests set this so the model
	// version a decision sees does not depend on retrain timing.
	syncRetrain bool
}

// validateFlags rejects nonsensical flag combinations before any
// socket is opened or goroutine started, so a typo'd invocation dies
// with one clear line instead of a zero-traffic run (or a divide/alloc
// panic deep in a worker). Pure so the table test can sweep it.
func validateFlags(workers, shards, traceSample, traceBuf, rffDim, burst, ringSize, latSample int, rffAgreement, sloObj float64, tsRes, tsRetain, sloWindow time.Duration) error {
	if workers < 1 {
		return fmt.Errorf("-workers must be >= 1, got %d", workers)
	}
	if shards < 1 {
		return fmt.Errorf("-shards must be >= 1, got %d", shards)
	}
	if burst < 1 {
		return fmt.Errorf("-burst must be >= 1, got %d", burst)
	}
	if ringSize < burst {
		return fmt.Errorf("-ringsize must be >= -burst (%d), got %d", burst, ringSize)
	}
	if traceSample < 0 {
		return fmt.Errorf("-tracesample must be >= 0 (0 disables tracing), got %d", traceSample)
	}
	if traceBuf < 0 {
		return fmt.Errorf("-tracebuf must be >= 0, got %d", traceBuf)
	}
	if traceSample > 0 && traceBuf < 1 {
		return fmt.Errorf("-tracebuf must be >= 1 when tracing is on, got %d", traceBuf)
	}
	if rffDim < 2 {
		return fmt.Errorf("-rffdim must be >= 2 (cos/sin pairs), got %d", rffDim)
	}
	if rffAgreement <= 0 || rffAgreement > 1 {
		return fmt.Errorf("-rffagreement must be in (0, 1], got %g", rffAgreement)
	}
	if latSample < 1 {
		return fmt.Errorf("-latsample must be >= 1 (1 = every admission), got %d", latSample)
	}
	if sloObj <= 0 || sloObj >= 1 {
		return fmt.Errorf("-sloobj must be in (0, 1), got %g", sloObj)
	}
	if tsRes <= 0 {
		return fmt.Errorf("-tsres must be > 0, got %v", tsRes)
	}
	if tsRetain < tsRes {
		return fmt.Errorf("-tsretain must be >= -tsres (%v), got %v", tsRes, tsRetain)
	}
	if sloWindow < 15*time.Second {
		return fmt.Errorf("-slowindow must be >= 15s (the fast window is 1/15th of it), got %v", sloWindow)
	}
	return nil
}

// buildIdentity reports the VCS revision and Go toolchain this binary
// was built from, for the exbox_build_info metric and the startup log.
func buildIdentity() (revision, goVersion string) {
	revision, goVersion = "unknown", runtime.Version()
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.GoVersion != "" {
			goVersion = bi.GoVersion
		}
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" && s.Value != "" {
				revision = s.Value
				if len(revision) > 12 {
					revision = revision[:12]
				}
			}
		}
	}
	return revision, goVersion
}

// classifySilence is how long a flow with an unfilled head must stay
// quiet before the sweep classifies it anyway (the silence case).
const classifySilence = 2.0 // seconds

func newGateway(listen string, space excr.Space, shards int, opts gatewayOptions, reg *obs.Registry, tracer *trace.Tracer) (*gateway, error) {
	addr, err := net.ResolveUDPAddr("udp", listen)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, err
	}
	sink, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		conn.Close()
		return nil, err
	}

	// Train the flow classifier on synthetic per-class traces and the
	// admittance classifier against the simulated cell's ground truth
	// (the operator's bootstrap, done offline here for a snappy demo).
	rng := mathx.NewRand(7)
	fc, err := flowclass.Train(
		[]excr.AppClass{excr.Web, excr.Streaming, excr.Conferencing}, 40, 10, rng)
	if err != nil {
		conn.Close()
		sink.Close()
		return nil, fmt.Errorf("training flow classifier: %w", err)
	}
	mb := exboxcore.New(space, exboxcore.Discontinue)
	cfg := classifier.DefaultConfig()
	// Live gateway: batch SVM fits happen on the cell's background
	// worker, never on a packet worker, and (unless -warmstart=false)
	// each refit is seeded from the previous boundary so the worker
	// keeps up with the paper's retrain-every-batch cadence.
	cfg.DeferRetrain = !opts.syncRetrain
	cfg.WarmStart = opts.warmStart
	// The RFF tier trades the exact SV-slab walk for a sub-microsecond
	// linearized score on every admission; the health monitor's oracle
	// gate demotes back to exact scoring if the tier misbehaves.
	cfg.SVM.RFF = opts.rff
	cfg.SVM.RFFDim = opts.rffDim
	if _, err := mb.AddCell(cellID, cfg); err != nil {
		conn.Close()
		sink.Close()
		return nil, err
	}
	if opts.rff {
		// The custom demotion threshold must land before Instrument:
		// EnableHealth is first-call-wins and Instrument installs the
		// defaults.
		hc := classifier.DefaultHealthConfig()
		hc.RFFAgreementMin = opts.rffAgreement
		mb.Cell(cellID).Classifier.EnableHealth(hc)
	}
	// Instrument before the bootstrap training below so the fit
	// metrics and training-size gauge cover it too. The tracer and the
	// health verdict hang off the same registry: /debug/traces serves
	// the tracer's ring, /debug/health the middlebox's report.
	mb.Instrument(reg, 256)
	mb.InstrumentTracing(tracer)
	if opts.latSample > 0 {
		mb.SetAdmitLatencySampling(opts.latSample)
	}
	mb.EnableSLO(exboxcore.SLOConfig{Objective: opts.sloObjective, SlowWindow: opts.sloWindow})
	if opts.flight != nil {
		mb.InstrumentFlightRecorder(opts.flight)
	}
	reg.SetTracer(tracer)
	reg.SetHealth(func() interface{} { return mb.Health() })
	oracle := apps.Oracle{Net: netsim.FluidWiFi{Config: netsim.TestbedWiFi()}}

	// Warm boot: restore the cell's learned boundary from the snapshot
	// directory when one is configured. A restored online cell serves
	// admissions from the saved fit immediately — the offline bootstrap
	// below is skipped entirely, so a warm boot performs zero cold
	// refits. A missing, corrupt or version-skewed file falls through to
	// the cold path (rejects are counted and flagged on /debug/health).
	warmBooted := false
	if opts.snapshotDir != "" {
		if err := os.MkdirAll(opts.snapshotDir, 0o755); err != nil {
			conn.Close()
			sink.Close()
			return nil, fmt.Errorf("snapshot dir: %w", err)
		}
		mb.EnableSnapshotPersistence(opts.snapshotDir)
		n, err := mb.LoadSnapshots(opts.snapshotDir)
		if err != nil {
			log.Printf("snapshot load: %v", err)
		}
		if n > 0 && !mb.Cell(cellID).Classifier.Bootstrapping() {
			warmBooted = true
			log.Printf("warm boot: restored %s from %s (model v%d)",
				cellID, opts.snapshotDir, mb.Cell(cellID).Classifier.ModelVersion())
		}
	}
	if !warmBooted {
		var assign func(excr.AppClass) excr.SNRLevel
		if space.Levels > 1 {
			assign = traffic.RandomLevels(rng, space)
		}
		for _, e := range traffic.Arrivals(traffic.Random(rng, 30, 10, 10, space), assign) {
			if err := mb.Observe(cellID, excr.Sample{Arrival: e.Arrival, Label: oracle.Label(e.Arrival)}); err != nil {
				conn.Close()
				sink.Close()
				return nil, err
			}
		}
		if mb.Cell(cellID).Classifier.Bootstrapping() {
			// Deferred retraining leaves graduation to the worker; the demo
			// wants admission control active from the first packet.
			if err := mb.Cell(cellID).Classifier.ForceOnline(); err != nil {
				conn.Close()
				sink.Close()
				return nil, err
			}
		}
	}

	// One registry wires every layer: the middlebox core (audit ring,
	// admission latency, per-cell classifier metrics), the flow table
	// (occupancy, expiries) and the gateway's own packet/flow counters.
	table := flows.NewShardedTable(shards, 10, 30, space)
	table.Instrument(reg, "exbox_flows")

	// The ingest rings: one bounded MPSC per worker, plus the wake
	// signal the read loop taps after each publish. The depth gauge
	// sums occupancy across all rings at scrape time.
	if opts.workers <= 0 {
		opts.workers = 1
	}
	if opts.burst <= 0 {
		opts.burst = 64
	}
	if opts.ringSize <= 0 {
		opts.ringSize = 1024
	}
	rings := make([]*ring.MPSC[pkt], opts.workers)
	wake := make([]chan struct{}, opts.workers)
	for i := range rings {
		rings[i] = ring.New[pkt](opts.ringSize)
		wake[i] = make(chan struct{}, 1)
	}
	ingest := obs.NewIngestMetrics(reg, func() int64 {
		var d int64
		for _, r := range rings {
			d += int64(r.Depth())
		}
		return d
	})

	start := time.Now()
	return &gateway{
		conn:       conn,
		sink:       sink,
		space:      space,
		rings:      rings,
		wake:       wake,
		burst:      opts.burst,
		table:      table,
		fc:         fc,
		mb:         mb,
		oracle:     oracle,
		start:      start,
		startNanos: start.UnixNano(),
		tracer:     tracer,
		healthG:    reg.Gauge("exbox_health_status"),
		flight:     opts.flight,
		snapDir:    opts.snapshotDir,
		reg:        reg,
		forwarded:  reg.Counter("exbox_gw_forwarded_packets_total"),
		dropped:    reg.Counter("exbox_gw_dropped_packets_total"),
		admitted:   reg.Counter("exbox_gw_admitted_flows_total"),
		rejected:   reg.Counter("exbox_gw_rejected_flows_total"),
		evicted:    reg.Counter("exbox_gw_discontinued_flows_total"),
		lateClass:  reg.Counter("exbox_gw_late_classified_total"),
		// The flow table already counts expiries; the gateway reads the
		// same counter instead of keeping a shadow copy.
		expired:  reg.Counter("exbox_flows_expired_total"),
		feedback: reg.Counter("exbox_gw_feedback_samples_total"),
		admitLat: reg.Histogram("exbox_admit_seconds", nil),
		ingest:   ingest,
	}, nil
}

func (g *gateway) close() {
	g.conn.Close()
	g.sink.Close()
	g.mb.Close()
	// Final save after the retrain workers stopped: whatever the last
	// fit and training window were, the next start warm-boots from them.
	if g.snapDir != "" {
		if n, err := g.mb.SaveSnapshots(g.snapDir); err != nil {
			log.Printf("snapshot save: %v", err)
		} else if n > 0 {
			log.Printf("saved %d cell snapshot(s) to %s", n, g.snapDir)
		}
	}
}

// saveSnapshots is the sweeper's periodic persistence pass; unchanged
// cells cost an export but no write.
func (g *gateway) saveSnapshots() {
	if g.snapDir == "" {
		return
	}
	if _, err := g.mb.SaveSnapshots(g.snapDir); err != nil {
		log.Printf("snapshot save: %v", err)
	}
}

// serveSnapshot publishes /snapshot/{cell}: the cell's latest encoded
// snapshot with the fit sequence as ETag, so a subscriber polls with
// If-None-Match and pays nothing while the model hasn't changed.
func (g *gateway) serveSnapshot(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/snapshot/")
	if id == "" || strings.Contains(id, "/") {
		http.NotFound(w, r)
		return
	}
	data, seq, err := g.mb.EncodeCellSnapshot(exboxcore.CellID(id))
	if err != nil {
		if errors.Is(err, exboxcore.ErrUnknownCell) {
			http.NotFound(w, r)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	etag := fmt.Sprintf("%q", fmt.Sprint(seq))
	w.Header().Set("ETag", etag)
	if r.Header.Get("If-None-Match") == etag {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(data)
}

// start spawns the ingest datapath: one socket read loop plus the
// ring-draining workers. main and the end-to-end tests share it, so
// the goroutine topology under test is the production one.
func (g *gateway) spawn(done chan struct{}, loops *sync.WaitGroup) {
	loops.Add(1)
	go func() {
		defer loops.Done()
		g.readLoop(done)
	}()
	for w := range g.rings {
		loops.Add(1)
		go func(w int) {
			defer loops.Done()
			g.worker(w, done)
		}(w)
	}
}

// readLoop owns the ingress socket: read a datagram, intern its
// client (key, shard and SNR are derived once per client, not once per
// packet), publish it on the owning worker's ring, and tap the
// worker's wake signal when the worker may be parked. A full ring
// drops the packet with a counter — bounded queues and explicit loss,
// never unbounded buffering. The wake signal is only sent when the
// push landed on the slot the consumer's cursor points at (see
// ring.TryPushWake); every other push already has a drain pass
// guaranteed by the entries queued ahead of it.
func (g *gateway) readLoop(done chan struct{}) {
	buf := make([]byte, 64*1024)
	nw := len(g.rings)
	in := newInterner(g)
	for {
		select {
		case <-done:
			return
		default:
		}
		g.conn.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
		n, src, err := g.conn.ReadFromUDP(buf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			return
		}
		up := n > 0 && buf[0] == 'U'
		ce := in.get(src)
		w := int(ce.shard) % nw
		p := pkt{
			ce:   ce,
			meta: flows.PacketMeta{Time: time.Since(g.start).Seconds(), Bytes: n, Up: up},
		}
		pushed, wake := g.rings[w].TryPushWake(p)
		if !pushed {
			g.ingest.Drops.Inc()
			continue
		}
		if wake {
			select {
			case g.wake[w] <- struct{}{}:
			default:
			}
		}
	}
}

// worker drains its ring in bursts and runs each burst through the
// batched pipeline. An empty ring parks on the wake signal; the read
// loop taps it after every publish, so the handoff is one buffered
// channel operation per burst in steady state, not one per packet.
func (g *gateway) worker(w int, done chan struct{}) {
	ws := newWorkerState(g.burst)
	for {
		n := g.rings[w].Drain(ws.pkts)
		if n == 0 {
			select {
			case <-done:
				return
			case <-g.wake[w]:
			}
			continue
		}
		g.processBurst(ws, ws.pkts[:n])
	}
}

// workerState is one worker's reusable workspace: the drain buffer and
// every scratch the burst pipeline needs. Nothing in it is shared, so
// the steady-state burst path allocates only what the admission layer
// itself allocates (matrix snapshots and audit records).
type workerState struct {
	pkts    []pkt
	bsc     flows.BatchScratch
	burst   exboxcore.BurstScratch
	cands   []exboxcore.BurstCandidate
	conf    []float64 // classifier confidence per candidate, for the log line
	candIdx []int32   // packet index -> candidate index, -1 when none
	outs    []exboxcore.Outcome
	forward []bool
	payload []byte // forwarding buffer (the sink only sees sizes)
}

func newWorkerState(burst int) *workerState {
	return &workerState{
		pkts:    make([]pkt, burst),
		candIdx: make([]int32, burst),
		forward: make([]bool, burst),
		payload: make([]byte, 64*1024),
	}
}

// processBurst is the batched datapath for one drained burst:
//
//  1. One grouped pass over the flow table (each touched shard locked
//     once): account every packet, set up first-packet SNR/tracing,
//     classify flows whose head filled, and collect the admission
//     candidates in visit order.
//  2. One AdmitBurst call: the middlebox replays the per-packet matrix
//     dynamics across the burst's candidates against a single matrix
//     snapshot plus the burst's own admits.
//  3. Only when the burst produced candidates, a second grouped pass
//     (applyDecisions) applies each decision under the shard lock and
//     resettles the forward/drop verdicts; candidate-free bursts are
//     done after one pass.
//
// Within a shard, packets are processed in arrival order; a flow's
// packets all map to one shard, so per-flow semantics are identical to
// the per-packet path (see flows/batch.go for the ordering contract).
func (g *gateway) processBurst(ws *workerState, pkts []pkt) {
	n := len(pkts)
	g.ingest.BurstSize.Observe(float64(n))
	ws.cands = ws.cands[:0]
	ws.conf = ws.conf[:0]
	candIdx := ws.candIdx[:n]
	for i := range candIdx {
		candIdx[i] = -1
	}
	forward := ws.forward[:n]

	// Same-flow memo: UDP traffic arrives in per-flow packet trains, and
	// the grouped pass keeps a train's packets adjacent under one
	// continuously held shard lock — so the previous packet's flow is
	// reusable for the next without a lookup. Pointer-equal interned
	// client entries prove the keys equal, so not even a key comparison
	// is needed (flows.ObserveOwned). The memo resets whenever the
	// visit moves to another shard (a different table, a different
	// lock).
	var lastT *flows.Table
	var lastCE *clientEntry
	var lastF *flows.Flow
	g.table.DoBatch(&ws.bsc, n,
		func(i int) int { return int(pkts[i].ce.shard) },
		func(i int, t *flows.Table) {
			p := &pkts[i]
			if t != lastT {
				lastT, lastCE, lastF = t, nil, nil
			}
			var f *flows.Flow
			if p.ce == lastCE {
				f = lastF
				t.ObserveOwned(f, p.meta)
			} else {
				f = t.Observe(p.ce.key, p.meta)
				lastCE, lastF = p.ce, f
			}
			if f.Packets == 1 {
				// The AP/eNodeB reports each client's link quality; the
				// demo derives a stable per-client SNR from its address.
				f.SNR = p.ce.snr
				// Head sampling: the tracing decision for the flow's whole
				// lifecycle is made here, once, from the key hash. Unsampled
				// flows leave f.Trace nil and never touch the tracer again.
				if id := traceID(f.Key); g.tracer.Sampled(id) {
					f.Trace = g.tracer.Start(id, string(cellID), -1, int(f.SNR), "sampled")
					f.Trace.Add(trace.Span{Kind: trace.KindArrival, UnixNanos: g.startNanos + int64(p.meta.Time*1e9)})
				}
			}
			if f.ReadyToClassify(t.HeadCap) {
				class, conf, err := g.fc.ClassifyFlow(f)
				if err != nil {
					return
				}
				f.Class, f.Classified = class, true
				if f.Trace != nil {
					f.Trace.SetClass(int(class))
					f.Trace.Add(trace.Span{
						Kind: trace.KindClassify, UnixNanos: time.Now().UnixNano(),
						Note: fmt.Sprintf("%v p=%.2f", class, conf),
					})
				}
				candIdx[i] = int32(len(ws.cands))
				ws.cands = append(ws.cands, exboxcore.BurstCandidate{
					Class: class, Level: g.level(f.SNR), Trace: f.Trace,
				})
				ws.conf = append(ws.conf, conf)
			}
			// Settle the verdict from the flow's current state; when this
			// burst produces decisions, the second pass recomputes every
			// slot after they are applied.
			forward[i] = !(f.Decided && !f.Admitted)
		})

	// Candidate-free bursts — the steady state once long-lived flows are
	// decided — are done: every verdict above is final, so the second
	// table pass (and its per-packet flow lookup) is skipped entirely.
	if len(ws.cands) > 0 {
		var err error
		ws.outs, err = g.mb.AdmitBurst(cellID, g.table.Matrix(), ws.cands, ws.outs, &ws.burst)
		if err != nil {
			log.Printf("admit burst: %v", err)
			ws.cands = ws.cands[:0]
		}
		g.applyDecisions(ws, pkts, candIdx, forward)
	}

	sinkAddr := g.sink.LocalAddr().(*net.UDPAddr)
	nfwd := 0
	for i := range pkts {
		if !forward[i] {
			continue
		}
		nfwd++
		size := pkts[i].meta.Bytes
		if size > len(ws.payload) {
			size = len(ws.payload)
		}
		if size > 0 && !g.noForwardIO {
			if _, err := g.conn.WriteToUDP(ws.payload[:size], sinkAddr); err != nil {
				log.Printf("forward: %v", err)
			}
		}
	}
	// One counter add per burst, not one per packet.
	g.forwarded.Add(int64(nfwd))
	g.dropped.Add(int64(n - nfwd))
}

// applyDecisions is the burst pipeline's second grouped pass, run only
// when the burst produced admission candidates: apply each decision to
// its flow under the shard lock (exactly what the per-packet path did
// inside Do) and resettle every packet's forward/drop verdict —
// packets behind a rejection in the same burst are dropped, as they
// would be had the decisions been made synchronously.
func (g *gateway) applyDecisions(ws *workerState, pkts []pkt, candIdx []int32, forward []bool) {
	g.table.DoBatch(&ws.bsc, len(pkts),
		func(i int) int { return int(pkts[i].ce.shard) },
		func(i int, t *flows.Table) {
			p := &pkts[i]
			f := t.Get(p.ce.key)
			if f == nil {
				// Expired between the passes by a concurrent sweep; the
				// packet has nothing to be dropped for.
				forward[i] = true
				return
			}
			if ci := candIdx[i]; ci >= 0 && int(ci) < len(ws.outs) {
				out := ws.outs[ci]
				f.Decided = true
				f.Admitted = out.Verdict == exboxcore.Admit
				if f.Admitted {
					g.admitted.Inc()
					g.table.TrackAdmitted(f)
				} else {
					g.rejected.Inc()
					// Rejections are always worth a trace: promote the flow
					// past head sampling, backfilling the arrival and
					// decision spans so the exported trace is complete.
					if f.Trace == nil && g.tracer != nil {
						f.Trace = g.tracer.Promote(traceID(f.Key), string(cellID), int(f.Class), int(g.level(f.SNR)),
							"rejected", g.startNanos+int64(f.FirstSeen*1e9))
						f.Trace.Add(exboxcore.DecisionSpan(time.Now().UnixNano(), 0, out))
					}
				}
				log.Printf("flow %s classified %v (p=%.2f) snr=%v -> %v (margin %.2f)",
					f.Key, f.Class, ws.conf[ci], f.SNR, out.Verdict, out.Decision.Margin)
			}
			// Pre-decision packets pass (classification needs them);
			// after the decision, rejected flows are dropped at the gate.
			forward[i] = !(f.Decided && !f.Admitted)
		})
}

// classifyAndDecide runs traffic classification and admission control
// for one flow. Caller holds the flow's shard lock.
func (g *gateway) classifyAndDecide(f *flows.Flow, scratch *classifier.Scratch) {
	class, conf, err := g.fc.ClassifyFlow(f)
	if err != nil {
		return
	}
	f.Class, f.Classified = class, true
	if f.Trace != nil {
		f.Trace.SetClass(int(class))
		f.Trace.Add(trace.Span{
			Kind: trace.KindClassify, UnixNanos: time.Now().UnixNano(),
			Note: fmt.Sprintf("%v p=%.2f", class, conf),
		})
	}
	current := g.table.Matrix()
	out, err := g.mb.AdmitTraced(cellID, excr.Arrival{Matrix: current, Class: class, Level: g.level(f.SNR)}, scratch, f.Trace)
	if err != nil {
		return
	}
	f.Decided = true
	f.Admitted = out.Verdict == exboxcore.Admit
	if f.Admitted {
		g.admitted.Inc()
		g.table.TrackAdmitted(f)
	} else {
		g.rejected.Inc()
		// Rejections are always worth a trace: promote the flow past
		// head sampling, backfilling the arrival and decision spans so
		// the exported trace is still complete.
		if f.Trace == nil && g.tracer != nil {
			f.Trace = g.tracer.Promote(traceID(f.Key), string(cellID), int(class), int(g.level(f.SNR)),
				"rejected", g.startNanos+int64(f.FirstSeen*1e9))
			f.Trace.Add(exboxcore.DecisionSpan(time.Now().UnixNano(), 0, out))
		}
	}
	log.Printf("flow %s classified %v (p=%.2f) snr=%v with matrix %v -> %v (margin %.2f)",
		f.Key, class, conf, f.SNR, current, out.Verdict, out.Decision.Margin)
}

// level collapses a flow's SNR into the space the middlebox runs on,
// the same rule Reevaluate applies.
func (g *gateway) level(snr excr.SNRLevel) excr.SNRLevel {
	if g.space.Levels == 1 {
		return 0
	}
	return snr
}

// traceID hashes a flow key into a trace ID without allocating (the
// fmt-based Key.String would): a manual FNV-64a over the key's fields,
// run once per flow on its first packet.
func traceID(k flows.Key) trace.ID {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime
		}
	}
	mix(k.Src)
	mix(k.Dst)
	h ^= uint64(k.SrcPort)
	h *= prime
	h ^= uint64(k.DstPort)
	h *= prime
	h ^= uint64(k.Proto)
	h *= prime
	return trace.ID(h)
}

// snrFor bins a client into an SNR level deterministically from its
// IP address alone, standing in for the link quality a real AP would
// report. Link quality belongs to the radio, i.e. the host — hashing
// the source port too would hand every flow from one client its own
// SNR, which is not how a station's channel behaves.
func snrFor(src *net.UDPAddr) excr.SNRLevel {
	h := fnv.New32a()
	h.Write([]byte(src.IP.String()))
	if h.Sum32()%4 == 0 {
		return excr.SNRLow
	}
	return excr.SNRHigh
}

// sweeper is the periodic maintenance goroutine: late-classify silent
// short flows, expire idle flows (feeding their labels back for online
// learning), and re-evaluate admitted flows against the current
// matrix, discontinuing the ones whose classification turned negative.
func (g *gateway) sweeper(done chan struct{}) {
	tick := time.NewTicker(500 * time.Millisecond)
	defer tick.Stop()
	// The sweeper's own classifier workspace: late classification and
	// the batched re-evaluation sweep reuse it tick after tick.
	scratch := new(classifier.Scratch)
	n := 0
	for {
		select {
		case <-done:
			return
		case <-tick.C:
			g.sweep(time.Since(g.start).Seconds(), scratch)
			if n++; n%10 == 0 {
				g.logStats()
				g.checkHealth()
				g.saveSnapshots()
			}
		}
	}
}

// checkHealth recomputes the middlebox health verdict, mirrors it into
// the exbox_health_status gauge (0 green, 1 yellow, 2 red) and logs
// transitions — the operator sees the flip, not a heartbeat.
func (g *gateway) checkHealth() {
	rep := g.mb.Health()
	g.healthG.Set(int64(rep.Status))
	if g.flight != nil {
		// Journal ingest-ring drops as batched deltas at health cadence —
		// one record per burst of loss, never one per dropped packet.
		if d := g.ingest.Drops.Value(); d > g.lastRingDrops {
			g.flight.Record(flightrec.Record{
				UnixNanos: rep.UnixNanos,
				Kind:      flightrec.KindRingDrop,
				Value:     float64(d - g.lastRingDrops),
				Aux:       float64(d),
			})
			g.lastRingDrops = d
		}
	}
	if g.healthSeen && rep.Status == g.lastHealth {
		return
	}
	if g.flight != nil {
		prev := float64(g.lastHealth)
		if !g.healthSeen {
			prev = -1 // no prior observation
		}
		g.flight.Record(flightrec.Record{
			UnixNanos: rep.UnixNanos,
			Kind:      flightrec.KindHealth,
			Value:     float64(rep.Status),
			Aux:       prev,
		})
	}
	var checks []string
	for _, c := range rep.Checks {
		if c.Status != exboxcore.Green {
			checks = append(checks, fmt.Sprintf("%s=%.3g", c.Name, c.Value))
		}
	}
	for _, cell := range rep.Cells {
		for _, c := range cell.Checks {
			if c.Status != exboxcore.Green {
				checks = append(checks, fmt.Sprintf("%s/%s=%.3g", cell.Cell, c.Name, c.Value))
			}
		}
	}
	if g.healthSeen {
		log.Printf("health: %v -> %v %v", g.lastHealth, rep.Status, checks)
	} else {
		log.Printf("health: %v", rep.Status)
	}
	g.lastHealth, g.healthSeen = rep.Status, true
}

// logStats emits the periodic one-line gateway summary from the same
// registry the /metrics page serves.
func (g *gateway) logStats() {
	log.Printf("stats: fwd=%d drop=%d admit=%d reject=%d discont=%d expired=%d late=%d feedback=%d tracked=%d admit_p50=%.3gs p99=%.3gs ring_drops=%d burst_p50=%.3g p99=%.3g",
		g.forwarded.Value(), g.dropped.Value(), g.admitted.Value(),
		g.rejected.Value(), g.evicted.Value(), g.expired.Value(),
		g.lateClass.Value(), g.feedback.Value(), g.table.Len(),
		g.admitLat.Quantile(0.5), g.admitLat.Quantile(0.99),
		g.ingest.Drops.Value(), g.ingest.BurstSize.Quantile(0.5), g.ingest.BurstSize.Quantile(0.99))
}

func (g *gateway) sweep(now float64, scratch *classifier.Scratch) {
	// Silence case: classify short flows whose head never filled.
	g.table.Sweep(func(t *flows.Table) {
		for _, f := range t.Active() {
			if f.ReadyBySilence(now, classifySilence) {
				g.classifyAndDecide(f, scratch)
				if f.Classified {
					g.lateClass.Inc()
				}
			}
		}
	})

	// Expire idle flows (the table counts the expiries); their observed
	// tuples (labeled by the demo oracle, standing in for the QoE
	// estimator) drive online learning on the cell's background
	// retrainer. Rejected flows expire too — the gateway stops
	// refreshing their activity once the drop decision is made — so
	// negative outcomes feed the training set just like positives.
	// The whole expiry batch goes through ObserveBatchTraced: one
	// training-lock hold and one retrain kick per sweep instead of one
	// per expired flow.
	current := g.table.Matrix()
	expired := g.table.Expire(now)
	var samples []excr.Sample
	var traces []*trace.FlowTrace
	for _, f := range expired {
		if f.Classified {
			arr := excr.Arrival{Matrix: current, Class: f.Class, Level: g.level(f.SNR)}
			samples = append(samples, excr.Sample{Arrival: arr, Label: g.oracle.Label(arr)})
			traces = append(traces, f.Trace)
		}
	}
	if len(samples) > 0 {
		_ = g.mb.ObserveBatchTraced(cellID, samples, traces)
		g.feedback.Add(int64(len(samples)))
	}
	for _, f := range expired {
		if f.Trace != nil {
			f.Trace.Add(trace.Span{
				Kind: trace.KindExpiry, UnixNanos: time.Now().UnixNano(),
				Note: fmt.Sprintf("pkts=%d bytes=%d", f.Packets, f.Bytes),
			})
			f.Trace.Close()
		}
	}

	// Dynamics (Section 4.3): rebuild the admitted-flow list and its
	// matrix in one sweep so Reevaluate sees a self-consistent pair,
	// then discontinue flows whose re-classification turned negative.
	var active []exboxcore.ActiveFlow
	var keys []flows.Key
	matrix := excr.NewMatrix(g.space)
	g.table.Sweep(func(t *flows.Table) {
		for _, f := range t.Active() {
			if f.Classified && f.Decided && f.Admitted && int(f.Class) < g.space.Classes {
				lvl := g.level(f.SNR)
				active = append(active, exboxcore.ActiveFlow{ID: len(active), Class: f.Class, Level: lvl, Trace: f.Trace})
				keys = append(keys, f.Key)
				matrix = matrix.Inc(f.Class, lvl)
			}
		}
	})
	if len(active) == 0 {
		return
	}
	evict, err := g.mb.ReevaluateWith(cellID, matrix, active, scratch)
	if err != nil {
		log.Printf("reevaluate: %v", err)
		return
	}
	for _, ev := range evict {
		k := keys[ev.ID]
		g.table.Do(k, func(t *flows.Table) {
			if f := t.Get(k); f != nil && f.Decided && f.Admitted {
				g.table.UntrackAdmitted(f)
				f.Admitted = false
				g.evicted.Inc()
				// A re-evaluation flip is always worth a trace: promote
				// past head sampling so the eviction is on /debug/traces.
				if f.Trace == nil && g.tracer != nil {
					f.Trace = g.tracer.Promote(traceID(f.Key), string(cellID), int(f.Class), int(g.level(f.SNR)),
						"reevaluate-flip", g.startNanos+int64(f.FirstSeen*1e9))
					f.Trace.Add(trace.Span{Kind: trace.KindReevaluate, UnixNanos: time.Now().UnixNano(), Verdict: "evict"})
				}
				log.Printf("flow %s discontinued by re-evaluation", f.Key)
			}
		})
	}
}

func (g *gateway) report() {
	fmt.Printf("\n=== exboxd summary ===\n")
	fmt.Printf("flows admitted: %d, rejected: %d, discontinued: %d\n",
		g.admitted.Value(), g.rejected.Value(), g.evicted.Value())
	fmt.Printf("packets forwarded: %d, dropped: %d\n", g.forwarded.Value(), g.dropped.Value())
	fmt.Printf("flows expired: %d, late-classified: %d\n", g.expired.Value(), g.lateClass.Value())
	for _, f := range g.table.Active() {
		verdict := "undecided"
		if f.Decided {
			verdict = "rejected"
			if f.Admitted {
				verdict = "admitted"
			}
		}
		fmt.Printf("  %-32s class=%-12v snr=%-4v pkts=%-6d bytes=%-8d %s\n",
			f.Key, f.Class, f.SNR, f.Packets, f.Bytes, verdict)
	}
}

// sendTrace plays a synthetic class trace against the gateway from its
// own UDP socket (one socket = one flow).
func sendTrace(gwAddr string, class excr.AppClass, d time.Duration, seed int64) error {
	raddr, err := net.ResolveUDPAddr("udp", gwAddr)
	if err != nil {
		return err
	}
	conn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		return err
	}
	defer conn.Close()

	tr := traffic.Synthesize(class, d.Seconds(), mathx.NewRand(seed))
	start := time.Now()
	payload := make([]byte, 64*1024)
	for _, p := range tr.Packets {
		if p.Bytes <= 0 {
			continue
		}
		at := time.Duration(p.TimeSec * float64(time.Second))
		if sleep := at - time.Since(start); sleep > 0 {
			time.Sleep(sleep)
		}
		// First byte marks the direction so the gateway can fold both
		// directions of the flow, as it would from interface context.
		if p.Up {
			payload[0] = 'U'
		} else {
			payload[0] = 'D'
		}
		size := p.Bytes
		if size > len(payload) {
			size = len(payload)
		}
		if _, err := conn.Write(payload[:size]); err != nil {
			return err
		}
		if time.Since(start) > d {
			break
		}
	}
	_ = os.Stdout.Sync()
	return nil
}
