package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"

	"exbox/internal/obs"
	"exbox/internal/obs/flightrec"
)

// TestKillAndReplay is the crash-safety acceptance test: run the real
// exboxd binary under demo load with the flight recorder on, capture
// the live audit ring over HTTP, SIGKILL the process with no warning,
// and verify the on-disk journal reproduces every captured admission
// verdict bit for bit. A torn tail frame is acceptable (the kill can
// land mid-write); silent loss of a synced record is not.
func TestKillAndReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a real binary; skipped in -short")
	}
	dir := t.TempDir()
	flightDir := filepath.Join(dir, "flight")
	exboxd := filepath.Join(dir, "exboxd")
	exlog := filepath.Join(dir, "exlog")
	for bin, pkg := range map[string]string{exboxd: "exbox/cmd/exboxd", exlog: "exbox/cmd/exlog"} {
		if out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput(); err != nil {
			t.Fatalf("go build %s: %v\n%s", pkg, err, out)
		}
	}

	cmd := exec.Command(exboxd,
		"-flightdir", flightDir,
		"-http", "127.0.0.1:0",
		"-duration", "2m", // far beyond the test's horizon: only the kill ends it
		"-tsres", "250ms",
	)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	}()

	// The daemon announces its ephemeral port on stderr.
	addrCh := make(chan string, 1)
	go func() {
		re := regexp.MustCompile(`telemetry on http://([^/]+)/metrics`)
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			if m := re.FindStringSubmatch(sc.Text()); m != nil {
				addrCh <- m[1]
				break
			}
		}
		// Keep draining so the child never blocks on a full pipe.
		for sc.Scan() {
		}
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case <-time.After(15 * time.Second):
		t.Fatal("exboxd never announced its telemetry address")
	}

	// Wait until demo traffic has produced audited admissions (the
	// demo runs six generator flows, one admission each), then freeze
	// the ring contents as ground truth.
	var audit []obs.DecisionRecord
	deadline := time.Now().Add(30 * time.Second)
	for {
		audit = scrapeAudit(t, addr)
		if len(audit) >= 5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d audited admissions before deadline", len(audit))
		}
		time.Sleep(100 * time.Millisecond)
	}
	scrapeTimeline(t, addr)

	// Everything in the snapshot was pushed to the flight ring before
	// the audit record became visible; one writer flush cadence (100ms,
	// with margin) later it is fsynced. Then kill without warning.
	time.Sleep(600 * time.Millisecond)
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	_ = cmd.Wait()

	recs, err := flightrec.ReadDir(flightDir)
	if err != nil && !errors.Is(err, flightrec.ErrTruncated) {
		t.Fatalf("ReadDir after kill: %v", err)
	}
	bySeq := make(map[uint64]flightrec.DecodedRecord)
	for _, rec := range recs {
		if rec.Kind == flightrec.KindAdmission {
			bySeq[rec.Seq] = rec
		}
	}
	if len(bySeq) < len(audit) {
		t.Fatalf("journal holds %d admissions, audit captured %d", len(bySeq), len(audit))
	}
	for _, ar := range audit {
		jr, ok := bySeq[ar.Seq]
		if !ok {
			t.Fatalf("audit seq %d missing from journal", ar.Seq)
		}
		if jr.UnixNanos != ar.UnixNanos {
			t.Fatalf("seq %d: stamp %d != audit %d", ar.Seq, jr.UnixNanos, ar.UnixNanos)
		}
		if math.Float64bits(jr.Value) != math.Float64bits(ar.Margin) {
			t.Fatalf("seq %d: margin bits %x != %x", ar.Seq,
				math.Float64bits(jr.Value), math.Float64bits(ar.Margin))
		}
		if flightrec.VerdictString(jr.Verdict) != ar.Verdict {
			t.Fatalf("seq %d: verdict %q != %q", ar.Seq, flightrec.VerdictString(jr.Verdict), ar.Verdict)
		}
		if jr.CellName != ar.Cell || int(jr.Class) != ar.Class || int(jr.Level) != ar.Level {
			t.Fatalf("seq %d: identity (%q,%d,%d) != (%q,%d,%d)",
				ar.Seq, jr.CellName, jr.Class, jr.Level, ar.Cell, ar.Class, ar.Level)
		}
		if (jr.Flags&flightrec.FlagBootstrap != 0) != ar.Bootstrap {
			t.Fatalf("seq %d: bootstrap flag mismatch", ar.Seq)
		}
	}

	// The operator-facing path must agree: exlog run over the crashed
	// directory decodes without panicking and emits every captured seq.
	out, err := exec.Command(exlog, "-dir", flightDir, "-kind", "admission", "-json").Output()
	if err != nil {
		t.Fatalf("exlog over crashed dir: %v", err)
	}
	seen := make(map[uint64]bool)
	sc := bufio.NewScanner(strings.NewReader(string(out)))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var rec struct {
			Seq uint64 `json:"seq"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("exlog line %q: %v", sc.Text(), err)
		}
		seen[rec.Seq] = true
	}
	for _, ar := range audit {
		if !seen[ar.Seq] {
			t.Fatalf("exlog output missing audit seq %d", ar.Seq)
		}
	}
}

func scrapeAudit(t *testing.T, addr string) []obs.DecisionRecord {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("http://%s/debug/admissions", addr))
	if err != nil {
		t.Fatalf("scrape admissions: %v", err)
	}
	defer resp.Body.Close()
	var recs []obs.DecisionRecord
	if err := json.NewDecoder(resp.Body).Decode(&recs); err != nil {
		t.Fatalf("decode admissions: %v", err)
	}
	return recs
}

// scrapeTimeline smoke-checks the live timeline endpoint: well-formed
// JSON array with plausible series while the daemon is under load.
func scrapeTimeline(t *testing.T, addr string) {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("http://%s/debug/timeline", addr))
	if err != nil {
		t.Fatalf("scrape timeline: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("timeline status %d", resp.StatusCode)
	}
	var series []struct {
		Name string `json:"name"`
		Kind string `json:"kind"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&series); err != nil {
		t.Fatalf("decode timeline: %v", err)
	}
	for _, s := range series {
		if s.Name == "" || (s.Kind != "gauge" && s.Kind != "delta") {
			t.Fatalf("malformed timeline series: %+v", s)
		}
	}
}
