// Package exbox is a from-scratch Go reproduction of "ExBox:
// Experience Management Middlebox for Wireless Networks" (Chakraborty,
// Sanadhya, Das, Kim and Kim, ACM CoNEXT 2016).
//
// ExBox rethinks wireless network capacity in terms of user experience:
// instead of a single throughput number, a cell's capacity is the
// Experiential Capacity Region (ExCR) — the set of traffic matrices
// (flow counts per application class and SNR level) for which every
// flow's QoE stays acceptable. ExBox learns this region online with an
// SVM-backed Admittance Classifier, estimates per-application QoE from
// passive network measurements via the IQX hypothesis
// (QoE = α + β·e^(−γ·QoS)), and uses the learned region for admission
// control, WiFi/LTE network selection, and re-evaluation of admitted
// flows as conditions drift.
//
// This package is the public facade over the implementation packages:
//
//   - Middlebox, Cell, Policy: the gateway component (admission
//     control, network selection, dynamics) from internal/exboxcore.
//   - AdmittanceClassifier, ClassifierConfig, Controller: the online
//     learner from internal/classifier, plus the RateBased and
//     MaxClient baselines from internal/baseline.
//   - QoEEstimator, IQXModel: the network-side QoE machinery from
//     internal/qoe and internal/iqx.
//   - Matrix, Arrival, Space, AppClass, SNRLevel: the ExCR domain model
//     from internal/excr.
//   - Networks (FluidWiFi, FluidLTE, PacketSim) and Testbeds: the
//     wireless substrates standing in for the paper's ns-3 simulations
//     and phone testbeds.
//
// See README.md for a quickstart, DESIGN.md for the system inventory
// and substitutions, and EXPERIMENTS.md for the paper-vs-measured
// record of every reproduced figure.
package exbox
