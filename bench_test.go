package exbox

// Benchmarks regenerating every figure of the paper's evaluation plus
// the Section 5.3 latency study and the ablations called out in
// DESIGN.md. Figure benchmarks run the Quick-scale experiment once per
// iteration and report the headline metric of the figure via
// b.ReportMetric, so `go test -bench=. -benchmem` both regenerates the
// results and times the pipeline. Use cmd/exbench for full-scale runs
// and printed tables.

import (
	"testing"

	"exbox/internal/classifier"
	"exbox/internal/dtree"
	"exbox/internal/eval"
	"exbox/internal/excr"
	"exbox/internal/learner"
	"exbox/internal/mathx"
	"exbox/internal/netsim"
	"exbox/internal/svm"
	"exbox/internal/traffic"
)

func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		hm := eval.Figure2(eval.Quick)
		if len(hm) != 3 {
			b.Fatal("figure 2 incomplete")
		}
	}
}

func BenchmarkFigure3(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		fig := eval.Figure3(eval.Quick)
		last = fig.MustGet("startup-delay-s/low-snr").Last().Y
	}
	b.ReportMetric(last, "worst-startup-s")
}

func BenchmarkFigure7(b *testing.B) {
	var p float64
	for i := 0; i < b.N; i++ {
		figs := eval.Figure7(eval.Quick)
		p = figs[0].MustGet("precision/ExBox").Last().Y
	}
	b.ReportMetric(p, "exbox-precision")
}

func BenchmarkFigure8(b *testing.B) {
	var p float64
	for i := 0; i < b.N; i++ {
		figs := eval.Figure8(eval.Quick)
		p = figs[0].MustGet("precision/ExBox").Last().Y
	}
	b.ReportMetric(p, "exbox-precision")
}

func BenchmarkFigure9(b *testing.B) {
	var a float64
	for i := 0; i < b.N; i++ {
		figs := eval.Figure9(eval.Quick)
		a = figs[0].MustGet("accuracy/ExBox").Last().Y
	}
	b.ReportMetric(a, "exbox-accuracy")
}

func BenchmarkFigure10(b *testing.B) {
	var p float64
	for i := 0; i < b.N; i++ {
		figs := eval.Figure10(eval.Quick)
		p = figs[0].MustGet("precision/ExBox-b20").Last().Y
	}
	b.ReportMetric(p, "exbox-b20-precision")
}

func BenchmarkFigure11(b *testing.B) {
	var p float64
	for i := 0; i < b.N; i++ {
		figs := eval.Figure11(eval.Quick)
		p = figs[0].MustGet("precision/ExBox").Last().Y
	}
	b.ReportMetric(p, "adapted-precision")
}

func BenchmarkFigure12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := eval.Figure12(eval.Quick)
		if len(fig.Series) != 3 {
			b.Fatal("figure 12 incomplete")
		}
	}
}

func BenchmarkFigure13(b *testing.B) {
	var p float64
	for i := 0; i < b.N; i++ {
		fig := eval.Figure13(eval.Quick)
		p = fig.MustGet("precision/ExBox-b50").Last().Y
	}
	b.ReportMetric(p, "exbox-precision")
}

func BenchmarkFigure14(b *testing.B) {
	var p float64
	for i := 0; i < b.N; i++ {
		figs := eval.Figure14(eval.Quick)
		p = figs[1].MustGet("precision/ExBox").Last().Y
	}
	b.ReportMetric(p, "lte-exbox-precision")
}

// trainedController returns an online Admittance Classifier fed n
// labeled samples from the simulated WiFi cell, plus a fresh probe.
func trainedController(b *testing.B, n int) (*classifier.AdmittanceClassifier, excr.Arrival) {
	b.Helper()
	oracle := Oracle{Net: netsim.FluidWiFi{Config: netsim.SimWiFi()}}
	ac := classifier.New(excr.DefaultSpace, classifier.DefaultConfig())
	rng := mathx.NewRand(1)
	fed := 0
	for fed < n {
		for _, e := range traffic.Arrivals(traffic.Random(rng, 10, 20, 0, excr.DefaultSpace), nil) {
			if fed >= n {
				break
			}
			ac.Observe(excr.Sample{Arrival: e.Arrival, Label: oracle.Label(e.Arrival)})
			fed++
		}
	}
	if ac.Bootstrapping() {
		if err := ac.ForceOnline(); err != nil {
			b.Fatal(err)
		}
	}
	probe := excr.Arrival{
		Matrix: excr.NewMatrix(excr.DefaultSpace).Set(excr.Streaming, 0, 12),
		Class:  excr.Web,
	}
	return ac, probe
}

// Section 5.3: admission-decision latency. The paper measures ≈5 ms
// for its Python ExBox and ≤2 ms for the baselines; the shape to
// preserve is ExBox being slower than both baselines but still
// comfortably interactive.
func BenchmarkDecisionLatencyExBox(b *testing.B) {
	ac, probe := trainedController(b, 300)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ac.Decide(probe)
	}
}

func BenchmarkDecisionLatencyRateBased(b *testing.B) {
	rb := NewRateBased(97.5e6)
	probe := excr.Arrival{
		Matrix: excr.NewMatrix(excr.DefaultSpace).Set(excr.Streaming, 0, 12),
		Class:  excr.Web,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rb.Decide(probe)
	}
}

func BenchmarkDecisionLatencyMaxClient(b *testing.B) {
	mc := NewMaxClient(10)
	probe := excr.Arrival{
		Matrix: excr.NewMatrix(excr.DefaultSpace).Set(excr.Streaming, 0, 12),
		Class:  excr.Web,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mc.Decide(probe)
	}
}

// Section 5.3: SVM training latency at 50 vs 1000 samples (the paper
// reports ≈360 ms and >2 s for its implementation; ours should scale
// the same way — superlinearly — even if the constants differ).
func benchmarkTraining(b *testing.B, n int) {
	oracle := Oracle{Net: netsim.FluidWiFi{Config: netsim.SimWiFi()}}
	rng := mathx.NewRand(2)
	var x [][]float64
	var y []float64
	for len(x) < n {
		for _, e := range traffic.Arrivals(traffic.Random(rng, 10, 20, 0, excr.DefaultSpace), nil) {
			if len(x) >= n {
				break
			}
			x = append(x, e.Arrival.Features())
			y = append(y, oracle.Label(e.Arrival))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svm.Train(svm.DefaultConfig(), x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrainingLatency50(b *testing.B)   { benchmarkTraining(b, 50) }
func BenchmarkTrainingLatency200(b *testing.B)  { benchmarkTraining(b, 200) }
func BenchmarkTrainingLatency1000(b *testing.B) { benchmarkTraining(b, 1000) }

// Ablation: SVM kernel choice. The linear kernel trains faster but
// cannot bend around the ExCR boundary's curvature in mixed spaces.
func benchmarkKernel(b *testing.B, kind svm.KernelKind) {
	oracle := Oracle{Net: netsim.FluidWiFi{Config: netsim.SimWiFi()}}
	rng := mathx.NewRand(3)
	var x [][]float64
	var y []float64
	for len(x) < 400 {
		for _, e := range traffic.Arrivals(traffic.Random(rng, 10, 20, 0, excr.DefaultSpace), nil) {
			if len(x) >= 400 {
				break
			}
			x = append(x, e.Arrival.Features())
			y = append(y, oracle.Label(e.Arrival))
		}
	}
	cfg := svm.DefaultConfig()
	cfg.Kernel = kind
	var acc float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := svm.Train(cfg, x, y)
		if err != nil {
			b.Fatal(err)
		}
		correct := 0
		for j := range x {
			if m.Predict(x[j]) == y[j] {
				correct++
			}
		}
		acc = float64(correct) / float64(len(x))
	}
	b.ReportMetric(acc, "train-accuracy")
}

func BenchmarkAblationKernelRBF(b *testing.B)    { benchmarkKernel(b, svm.RBF) }
func BenchmarkAblationKernelLinear(b *testing.B) { benchmarkKernel(b, svm.Linear) }

// Ablation: fluid model vs packet-level simulation of the same cell.
func BenchmarkAblationNetModelFluid(b *testing.B) {
	net := netsim.FluidWiFi{Config: netsim.SimWiFi()}
	m := excr.NewMatrix(excr.DefaultSpace).Set(excr.Streaming, 0, 20).Set(excr.Web, 0, 10)
	flows := netsim.FlowsForMatrix(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Evaluate(flows)
	}
}

func BenchmarkAblationNetModelPacket(b *testing.B) {
	m := excr.NewMatrix(excr.DefaultSpace).Set(excr.Streaming, 0, 20).Set(excr.Web, 0, 10)
	flows := netsim.FlowsForMatrix(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ps := netsim.NewPacketSim(netsim.WiFiCell, int64(i))
		ps.Evaluate(flows)
	}
}

// Ablation: replace-repeated-matrix policy vs append-only. Replacement
// keeps the training set (and hence retraining cost) bounded by the
// number of distinct matrices; append-only grows without bound.
func benchmarkReplacePolicy(b *testing.B, replace bool) {
	oracle := Oracle{Net: netsim.FluidWiFi{Config: netsim.SimWiFi()}}
	cfg := classifier.DefaultConfig()
	cfg.ReplaceRepeated = replace
	var setSize float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ac := classifier.New(excr.DefaultSpace, cfg)
		rng := mathx.NewRand(4)
		// A workload with heavy matrix repetition (small universe).
		for _, e := range traffic.Arrivals(traffic.Random(rng, 120, 3, 0, excr.DefaultSpace), nil) {
			ac.Observe(excr.Sample{Arrival: e.Arrival, Label: oracle.Label(e.Arrival)})
		}
		setSize = float64(ac.TrainingSetSize())
	}
	b.ReportMetric(setSize, "training-set")
}

func BenchmarkAblationReplaceRepeated(b *testing.B) { benchmarkReplacePolicy(b, true) }
func BenchmarkAblationAppendOnly(b *testing.B)      { benchmarkReplacePolicy(b, false) }

// Ablation: bootstrap CV threshold. Stricter thresholds need more
// samples before going online.
func benchmarkBootstrap(b *testing.B, threshold float64) {
	oracle := Oracle{Net: netsim.FluidWiFi{Config: netsim.SimWiFi()}}
	cfg := classifier.DefaultConfig()
	cfg.CVThreshold = threshold
	var used float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ac := classifier.New(excr.DefaultSpace, cfg)
		rng := mathx.NewRand(5)
		fed := 0
		for ac.Bootstrapping() && fed < 2000 {
			for _, e := range traffic.Arrivals(traffic.Random(rng, 5, 20, 0, excr.DefaultSpace), nil) {
				if !ac.Bootstrapping() {
					break
				}
				ac.Observe(excr.Sample{Arrival: e.Arrival, Label: oracle.Label(e.Arrival)})
				fed++
			}
		}
		used = float64(fed)
	}
	b.ReportMetric(used, "bootstrap-samples")
}

func BenchmarkAblationBootstrapCV60(b *testing.B) { benchmarkBootstrap(b, 0.6) }
func BenchmarkAblationBootstrapCV97(b *testing.B) { benchmarkBootstrap(b, 0.97) }

// Ablation: learner choice — RBF SVM (the paper's pick) vs CART tree.
func benchmarkLearnerChoice(b *testing.B, l learner.Learner) {
	oracle := Oracle{Net: netsim.FluidWiFi{Config: netsim.SimWiFi()}}
	cfg := classifier.DefaultConfig()
	cfg.Learner = l
	var acc float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ac := classifier.New(excr.DefaultSpace, cfg)
		rng := mathx.NewRand(6)
		for _, e := range traffic.Arrivals(traffic.Random(rng, 30, 20, 0, excr.DefaultSpace), nil) {
			ac.Observe(excr.Sample{Arrival: e.Arrival, Label: oracle.Label(e.Arrival)})
		}
		if ac.Bootstrapping() {
			if err := ac.ForceOnline(); err != nil {
				b.Fatal(err)
			}
		}
		eRng := mathx.NewRand(7)
		correct, total := 0, 0
		for _, e := range traffic.Arrivals(traffic.Random(eRng, 15, 20, 0, excr.DefaultSpace), nil) {
			pred := -1.0
			if ac.Decide(e.Arrival).Admit {
				pred = 1
			}
			if pred == oracle.Label(e.Arrival) {
				correct++
			}
			total++
		}
		acc = float64(correct) / float64(total)
	}
	b.ReportMetric(acc, "holdout-accuracy")
}

func BenchmarkAblationLearnerSVM(b *testing.B) {
	benchmarkLearnerChoice(b, learner.SVM{Config: svm.DefaultConfig()})
}

func BenchmarkAblationLearnerTree(b *testing.B) {
	benchmarkLearnerChoice(b, learner.Tree{Config: dtree.DefaultConfig()})
}
