package exbox

import (
	"bytes"
	"fmt"
	"testing"

	"exbox/internal/mathx"
)

// trainViaFacade builds an online classifier through the public API.
func trainViaFacade(t testing.TB, seed int64) *AdmittanceClassifier {
	cell := FluidWiFi{Config: SimWiFiConfig()}
	oracle := Oracle{Net: cell}
	ac := NewAdmittanceClassifier(DefaultSpace, DefaultClassifierConfig())
	rng := mathx.NewRand(seed)
	for _, ev := range ArrivalEvents(RandomMatrices(rng, 25, 20, 0, DefaultSpace), nil) {
		ac.Observe(Sample{Arrival: ev.Arrival, Label: oracle.Label(ev.Arrival)})
	}
	if ac.Bootstrapping() {
		t.Fatal("facade classifier did not graduate")
	}
	return ac
}

func TestFacadeEndToEnd(t *testing.T) {
	ac := trainViaFacade(t, 1)
	empty := Arrival{Matrix: NewMatrix(DefaultSpace), Class: Streaming}
	if d := ac.Decide(empty); !d.Admit {
		t.Fatal("empty cell should admit")
	}
	full := Arrival{
		Matrix: NewMatrix(DefaultSpace).Set(Streaming, 0, 18).Set(Conferencing, 0, 15).Set(Web, 0, 12),
		Class:  Streaming,
	}
	if d := ac.Decide(full); d.Admit {
		t.Fatal("overloaded cell should reject")
	}
}

func TestFacadeMiddlebox(t *testing.T) {
	mb := NewMiddlebox(DefaultSpace, Deprioritize)
	if _, err := mb.AddCell("ap", DefaultClassifierConfig()); err != nil {
		t.Fatal(err)
	}
	oracle := Oracle{Net: FluidWiFi{Config: SimWiFiConfig()}}
	rng := mathx.NewRand(2)
	for _, ev := range ArrivalEvents(RandomMatrices(rng, 25, 20, 0, DefaultSpace), nil) {
		if err := mb.Observe("ap", Sample{Arrival: ev.Arrival, Label: oracle.Label(ev.Arrival)}); err != nil {
			t.Fatal(err)
		}
	}
	out, err := mb.Admit("ap", Arrival{Matrix: NewMatrix(DefaultSpace), Class: Web})
	if err != nil {
		t.Fatal(err)
	}
	if out.Verdict.String() != "admit" {
		t.Fatalf("verdict = %v", out.Verdict)
	}
}

func TestFacadeQoEEstimator(t *testing.T) {
	tb := NewTestbed(WiFiTestbed, 3)
	est, err := TrainQoEEstimator(tb, []AppClass{Web, Streaming, Conferencing}, 2)
	if err != nil {
		t.Fatal(err)
	}
	good := QoS{ThroughputBps: 10e6, DelayMs: 20}
	for _, class := range []AppClass{Web, Streaming, Conferencing} {
		v, err := est.Estimate(class, good)
		if err != nil {
			t.Fatal(err)
		}
		truth := MeasureQoE(class, good, nil)
		// Network-side estimate and device ground truth must agree on
		// acceptability for clearly good QoS.
		y, _ := est.LabelFlow(class, good)
		if y != 1 || !truth.Acceptable() {
			t.Fatalf("%v: estimate %v (label %v) disagrees with ground truth %v", class, v, y, truth)
		}
	}
}

func TestFacadeIQXFit(t *testing.T) {
	truth := IQXModel{Alpha: 2, Beta: 10, Gamma: 0.7}
	var qos, qoe []float64
	for q := 0.0; q <= 10; q += 0.25 {
		qos = append(qos, q)
		qoe = append(qoe, truth.Eval(q))
	}
	res, err := FitIQX(qos, qoe)
	if err != nil {
		t.Fatal(err)
	}
	if res.RMSE > 1e-6 {
		t.Fatalf("facade fit RMSE = %v", res.RMSE)
	}
}

func TestFacadeNetworksAndWorkloads(t *testing.T) {
	// Every exported network backend evaluates a matrix's flows.
	m := NewMatrix(DefaultSpace).Set(Streaming, 0, 3)
	flows := FlowsForMatrix(m)
	for _, net := range []Network{
		FluidWiFi{Config: SimWiFiConfig()},
		FluidLTE{Config: SimLTEConfig()},
		FluidWiFi{Config: TestbedWiFiConfig()},
		FluidLTE{Config: TestbedLTEConfig()},
		NewWiFiPacketSim(1),
		NewLTEPacketSim(1),
	} {
		qos := net.Evaluate(flows)
		if len(qos) != len(flows) {
			t.Fatalf("%s: %d results for %d flows", net.Name(), len(qos), len(flows))
		}
		if qos[0].ThroughputBps <= 0 {
			t.Fatalf("%s: zero throughput", net.Name())
		}
	}
	// LiveLab config round trip.
	cfg := DefaultLiveLab()
	cfg.Days = 1
	if got := LiveLabMatrices(mathx.NewRand(4), cfg); len(got) == 0 {
		t.Fatal("LiveLabMatrices empty")
	}
}

func TestFacadeShaper(t *testing.T) {
	base := FluidWiFi{Config: TestbedWiFiConfig()}
	shaped := Shaper{Net: base, RateBps: 1e6, ExtraDelayMs: 100}
	qos := shaped.Evaluate(FlowsForMatrix(NewMatrix(DefaultSpace).Set(Streaming, 0, 2)))
	if qos[0].ThroughputBps > 1e6 {
		t.Fatal("shaper cap not applied")
	}
	if qos[0].DelayMs < 100 {
		t.Fatal("shaper delay not applied")
	}
}

// ExampleMatrix shows traffic-matrix arithmetic.
func ExampleMatrix() {
	m := NewMatrix(DefaultSpace).
		Set(Web, 0, 3).
		Set(Streaming, 0, 2).
		Inc(Conferencing, 0)
	fmt.Println(m, "total:", m.Total())
	// Output: <3,2,1> total: 6
}

// ExampleRateBased shows the commercial rate-based baseline.
func ExampleRateBased() {
	rb := NewRateBased(16e6) // 16 Mbps provisioned
	cell := NewMatrix(DefaultSpace).Set(Streaming, 0, 3)
	d := rb.Decide(Arrival{Matrix: cell, Class: Streaming})
	fmt.Println("4th stream admitted:", d.Admit)
	d = rb.Decide(Arrival{Matrix: cell.Inc(Streaming, 0), Class: Streaming})
	fmt.Println("5th stream admitted:", d.Admit)
	// Output:
	// 4th stream admitted: true
	// 5th stream admitted: false
}

// ExampleOracle shows device-side ground-truth labeling.
func ExampleOracle() {
	oracle := Oracle{Net: FluidWiFi{Config: SimWiFiConfig()}}
	light := Arrival{Matrix: NewMatrix(DefaultSpace), Class: Web}
	heavy := Arrival{Matrix: NewMatrix(DefaultSpace).Set(Streaming, 0, 40), Class: Web}
	fmt.Println(oracle.Label(light), oracle.Label(heavy))
	// Output: 1 -1
}

func TestFacadeAppAdmissionAndReplay(t *testing.T) {
	// App-based admission through the facade.
	mb := NewMiddlebox(DefaultSpace, Discontinue)
	if _, err := mb.AddCell("ap", DefaultClassifierConfig()); err != nil {
		t.Fatal(err)
	}
	oracle := Oracle{Net: FluidWiFi{Config: SimWiFiConfig()}}
	rng := mathx.NewRand(9)
	for _, ev := range ArrivalEvents(RandomMatrices(rng, 25, 20, 0, DefaultSpace), nil) {
		mb.Observe("ap", Sample{Arrival: ev.Arrival, Label: oracle.Label(ev.Arrival)})
	}
	req := AppRequest{Flows: []AppFlow{
		{Class: Streaming, Dominant: true},
		{Class: Web},
	}}
	out, after, err := mb.AdmitApp("ap", NewMatrix(DefaultSpace), req)
	if err != nil {
		t.Fatal(err)
	}
	if out.Verdict.String() != "admit" || after.Total() != 2 {
		t.Fatalf("app admission wrong: %v, matrix %v", out.Verdict, after)
	}

	// Trace synth → serialize → replay into the packet simulator.
	tr := SynthesizeTrace(Streaming, 5, mathx.NewRand(10))
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var pkts []InjectedPacket
	for _, p := range back.Packets {
		if !p.Up {
			pkts = append(pkts, InjectedPacket{Flow: 0, AtSec: p.TimeSec, Bytes: p.Bytes})
		}
	}
	ps := NewWiFiPacketSim(11)
	qos, err := ps.EvaluateInjected([]ReplayFlow{{Class: Streaming, Level: SNRHigh}}, pkts)
	if err != nil {
		t.Fatal(err)
	}
	if qos[0].ThroughputBps < 1e6 {
		t.Fatalf("replayed streaming trace goodput = %v", qos[0].ThroughputBps)
	}
}
